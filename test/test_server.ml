(* Concurrent multi-client server and group-commit batcher (ISSUE 4):
   determinism, batching amortisation, fairness under a bulk writer,
   backpressure rejects, crash atomicity of acknowledged transactions,
   the Demons.run_due split, and the script-file parser. *)

open Cedar_util
open Cedar_disk
open Cedar_fsd
module C = Cedar_workload.Concurrent
module S = Cedar_server.Server
module Obs = Cedar_obs

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let fresh_fs ?(geom = Geometry.small_test) ?params () =
  let clock = Simclock.create () in
  let device = Device.create ~clock geom in
  let params =
    match params with Some p -> p | None -> Params.for_geometry geom
  in
  Fsd.format device params;
  let fs, _ = Fsd.boot device in
  (device, fs)

(* A small hand-rolled script: [creates] files with [think] between
   steps, names "c<NN>/f<i>" so every client writes its own namespace. *)
let create_script ~client ~creates ~bytes ~think =
  List.concat_map
    (fun i ->
      [
        C.Think think;
        C.Op (C.Create { name = Printf.sprintf "c%02d/f%d" client i; bytes; fill = i });
      ])
    (List.init creates (fun i -> i))

let script_names script =
  List.filter_map
    (function C.Op (C.Create { name; _ }) -> Some name | _ -> None)
    script

(* ------------------------------------------------------------------ *)
(* Determinism: the seed contract                                       *)

let run_report () =
  let _, fs = fresh_fs () in
  let spec = { C.default_spec with C.modules = 4; rounds = 1; think_us = 30_000 } in
  let r = S.serve fs (C.makedo_scripts spec ~clients:3) in
  Obs.Jsonb.to_string (S.report_json r)

let test_determinism () =
  let a = run_report () in
  let b = run_report () in
  check bool "same seed, byte-identical reports" true (String.equal a b)

(* ------------------------------------------------------------------ *)
(* Group commit amortisation: more clients per force                    *)

let ops_per_force clients =
  let _, fs = fresh_fs () in
  let spec = { C.default_spec with C.modules = 4; rounds = 1; think_us = 60_000 } in
  let r = S.serve fs (C.makedo_scripts spec ~clients) in
  check int "no rejects" 0 r.S.total_rejected;
  check int "no errors" 0 r.S.total_errors;
  r.S.ops_per_force

let test_batching_amortizes () =
  let one = ops_per_force 1 in
  let eight = ops_per_force 8 in
  check bool
    (Printf.sprintf "8 clients amortise better (1: %.2f, 8: %.2f)" one eight)
    true
    (eight > one *. 2.)

(* Every mutating op must be acknowledged exactly once. *)
let test_all_mutations_acked () =
  let _, fs = fresh_fs () in
  let scripts =
    Array.init 3 (fun client ->
        create_script ~client ~creates:5 ~bytes:700 ~think:40_000)
  in
  let acks = ref 0 in
  let config =
    { S.default_config with S.on_ack = Some (fun ~client:_ ~op:_ -> incr acks) }
  in
  let r = S.serve ~config fs scripts in
  check int "15 mutations acked" 15 r.S.mutations_acked;
  check int "ack hook fired per mutation" 15 !acks;
  check int "every op ran" 15 r.S.total_ops;
  Array.iter
    (fun s -> check bool "session drained" true (Fsd.exists fs ~name:s))
    [| "c00/f4"; "c01/f4"; "c02/f4" |]

(* ------------------------------------------------------------------ *)
(* Fairness: a bulk writer must not starve small sessions               *)

let test_fairness_no_starvation () =
  let _, fs = fresh_fs () in
  (* Client 0 streams creates with almost no think time; clients 1-3 do
     light metadata churn with human-scale pauses. *)
  let scripts =
    Array.init 4 (fun client ->
        if client = 0 then
          C.bulk_writer ~client ~files:30 ~bytes:2_000 ~think_us:2_000 ~seed:9
        else C.churn ~client ~ops:8 ~bytes:400 ~think_us:40_000 ~seed:(10 + client))
  in
  let r = S.serve fs scripts in
  check int "no rejects" 0 r.S.total_rejected;
  check int "no errors" 0 r.S.total_errors;
  let interval = (Fsd.params fs).Params.commit_interval_us in
  List.iter
    (fun s ->
      if s.S.r_client > 0 then begin
        check bool
          (Printf.sprintf "session %d made progress" s.S.r_client)
          true (s.S.r_mutations > 0);
        (* Bounded commit wait: no small session ever waits longer than
           three commit intervals even while the bulk writer floods. *)
        check bool
          (Printf.sprintf "session %d wait bounded (max %d us)" s.S.r_client
             s.S.r_wait_max_us)
          true
          (s.S.r_wait_max_us < 3 * interval)
      end)
    r.S.per_session;
  check bool "p99 commit wait bounded" true
    (r.S.wait_p99_us < float_of_int (3 * interval))

(* ------------------------------------------------------------------ *)
(* Admission control: typed rejects, never a block, never a lost op     *)

(* Regression (ISSUE 5): the depth cap used to be gated on log fill, so
   with a near-empty log the parked queue could grow past [queue_cap].
   The cap must hold unconditionally, and a rejected step must be
   retried rather than silently dropped. *)
let test_queue_cap_unconditional () =
  let _, fs = fresh_fs () in
  let rejects = ref [] in
  let config =
    {
      S.default_config with
      S.queue_cap = 2;
      max_batch = 1000;
      on_reject =
        Some
          (fun ~client e ->
            (match e with
            | S.Queue_full { depth; cap } ->
              check int "cap reported" 2 cap;
              check bool "depth at or over cap" true (depth >= cap)
            | S.Backpressure _ ->
              Alcotest.fail "fill trigger is disabled at threshold 1.0");
            rejects := client :: !rejects);
    }
  in
  let scripts =
    Array.init 4 (fun client ->
        create_script ~client ~creates:4 ~bytes:600 ~think:0)
  in
  let r = S.serve ~config fs scripts in
  check bool "cap rejected some admissions despite empty log" true
    (r.S.total_rejected > 0);
  check int "hook saw every reject" r.S.total_rejected (List.length !rejects);
  check int "rejects are not errors" 0 r.S.total_errors;
  (* Never lost: every mutation is eventually acked or counted dropped. *)
  check int "acked + dropped covers every mutation" 16
    (r.S.mutations_acked + r.S.total_dropped);
  check int "retries eventually drained the queue" 0 r.S.total_dropped

(* Regression (ISSUE 5): log-fill backpressure is a distinct trigger
   with its own typed error, and exhausting the bounded retries turns
   into an accounted drop — not a silent loss. *)
let test_backpressure_typed_reject () =
  let _, fs = fresh_fs () in
  let saw = ref 0 in
  let config =
    {
      S.default_config with
      S.backpressure_fill = 0.0;
      admission_retries = 2;
      on_reject =
        Some
          (fun ~client:_ e ->
            match e with
            | S.Backpressure { depth; threshold; _ } ->
              check int "queue empty at reject time" 0 depth;
              check bool "threshold echoed" true (threshold = 0.0);
              incr saw
            | S.Queue_full _ ->
              Alcotest.fail "queue is nowhere near its cap");
    }
  in
  let scripts = [| create_script ~client:0 ~creates:2 ~bytes:600 ~think:0 |] in
  let r = S.serve ~config fs scripts in
  check int "arrival + 2 retries rejected per step" 6 r.S.total_rejected;
  check int "hook saw every reject" 6 !saw;
  check int "exhausted retries counted as drops" 2 r.S.total_dropped;
  check int "nothing acked" 0 r.S.mutations_acked

(* ------------------------------------------------------------------ *)
(* Crash atomicity: acked present, unacked absent                       *)

let test_crash_atomicity () =
  let clock = Simclock.create () in
  let device = Device.create ~clock Geometry.small_test in
  Fsd.format device (Params.for_geometry Geometry.small_test);
  let fs, _ = Fsd.boot device in
  let acked = ref [] in
  let crash_force = 3 in
  let config =
    {
      S.default_config with
      S.on_force =
        Some
          (fun n ->
            if n = crash_force then
              Device.plan_write_crash device ~after_sectors:0 ~damage_tail:0);
      on_ack =
        Some (fun ~client:_ ~op -> acked := C.op_name op :: !acked);
    }
  in
  let scripts =
    Array.init 2 (fun client ->
        create_script ~client ~creates:8 ~bytes:900 ~think:180_000)
  in
  (match S.serve ~config fs scripts with
  | (_ : S.report) -> Alcotest.fail "expected the armed crash during force 3"
  | exception Device.Crash_during_write _ -> ());
  Device.cancel_write_crash device;
  check bool "some transactions were acked before the crash" true
    (List.length !acked > 0);
  (* Reboot: log replay must land exactly the acknowledged transactions. *)
  let fs2, _ = Fsd.boot device in
  List.iter
    (fun name ->
      check bool ("acked survives the crash: " ^ name) true
        (Fsd.exists fs2 ~name))
    !acked;
  let all_names =
    Array.to_list scripts |> List.concat_map script_names
  in
  let unacked = List.filter (fun n -> not (List.mem n !acked)) all_names in
  check bool "some transactions were still unacknowledged" true
    (List.length unacked > 0);
  List.iter
    (fun name ->
      check bool ("unacked never visible after recovery: " ^ name) false
        (Fsd.exists fs2 ~name))
    unacked

(* ------------------------------------------------------------------ *)
(* Demons.run_due is exactly the demon half of Fsd.tick                 *)

let test_demons_split_equivalence () =
  let drive advance =
    let _, fs = fresh_fs () in
    ignore (Fsd.create fs ~name:"d/one" (Bytes.create 700));
    advance fs 700_000;
    ((Fsd.counters fs).forces, Fsd.durable_seq fs, Fsd.mutation_seq fs)
  in
  let via_tick = drive (fun fs us -> Fsd.tick fs ~us) in
  let via_demons =
    drive (fun fs us ->
        Simclock.advance (Device.clock (Fsd.device fs)) us;
        Demons.run_due fs)
  in
  check bool "advance + Demons.run_due ≡ tick" true (via_tick = via_demons)

(* ------------------------------------------------------------------ *)
(* Params validation                                                    *)

let test_params_blackbox_cadence_validated () =
  let geom = Geometry.small_test in
  let p = Params.for_geometry geom in
  (match Params.validate geom { p with Params.blackbox_every_n_forces = 0 } with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "cadence 0 must be rejected");
  match Params.validate geom { p with Params.blackbox_every_n_forces = 8 } with
  | Ok () -> ()
  | Error m -> Alcotest.failf "cadence 8 wrongly rejected: %s" m

(* ------------------------------------------------------------------ *)
(* Session interleaving is visible in the Chrome export                 *)

let test_session_trace_export () =
  let _, fs = fresh_fs () in
  Obs.Trace.enable (Device.trace (Fsd.device fs));
  let scripts =
    Array.init 2 (fun client ->
        create_script ~client ~creates:3 ~bytes:500 ~think:50_000)
  in
  ignore (S.serve fs scripts : S.report);
  let json =
    Obs.Jsonb.to_string
      (Obs.Export.chrome (Obs.Trace.to_list (Device.trace (Fsd.device fs))))
  in
  let contains needle =
    let nl = String.length needle and hl = String.length json in
    let rec go i = i + nl <= hl && (String.sub json i nl = needle || go (i + 1)) in
    go 0
  in
  check bool "per-session track names" true
    (contains "session 0" && contains "session 1");
  check bool "session op spans" true (contains "\"session00\"");
  check bool "commit waits drawn on session tracks" true (contains "commit-wait")

(* ------------------------------------------------------------------ *)
(* Script files                                                         *)

let test_script_parser () =
  let text =
    "# build one file, read it back\n\
     think 5000\n\
     create {c}/a.txt 2048\n\
     read-page {c}/a.txt 0\n\
     list {c}/\n\
     force\n\
     delete {c}/a.txt\n"
  in
  match C.parse_script text with
  | Error m -> Alcotest.failf "parse failed: %s" m
  | Ok script ->
    check int "six steps" 6 (List.length script);
    let inst = C.instantiate script ~client:3 in
    (match inst with
    | C.Think 5000
      :: C.Op (C.Create { name = "c03/a.txt"; bytes = 2048; _ })
      :: C.Op (C.Read_page { name = "c03/a.txt"; page = 0 })
      :: _ ->
      ()
    | _ -> Alcotest.fail "instantiation did not substitute {c}");
    (* And the instantiated script actually runs. *)
    let _, fs = fresh_fs () in
    let r = S.serve fs [| C.instantiate script ~client:0 |] in
    check int "parser script runs clean" 0 r.S.total_errors

let test_script_parser_rejects_garbage () =
  (match C.parse_script "create onlyname\n" with
  | Error m ->
    check bool "error names the line" true
      (String.length m >= 6 && String.sub m 0 6 = "line 1")
  | Ok _ -> Alcotest.fail "malformed create accepted");
  match C.parse_script "think soon\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-numeric think accepted"

let suite =
  [
    Alcotest.test_case "same-seed runs are byte-identical" `Quick test_determinism;
    Alcotest.test_case "more clients amortise each force" `Slow
      test_batching_amortizes;
    Alcotest.test_case "every mutation acked exactly once" `Quick
      test_all_mutations_acked;
    Alcotest.test_case "bulk writer does not starve small sessions" `Quick
      test_fairness_no_starvation;
    Alcotest.test_case "depth cap holds even with an empty log" `Quick
      test_queue_cap_unconditional;
    Alcotest.test_case "fill backpressure is a distinct typed reject" `Quick
      test_backpressure_typed_reject;
    Alcotest.test_case "crash keeps acked, drops unacked" `Quick
      test_crash_atomicity;
    Alcotest.test_case "Demons.run_due matches Fsd.tick" `Quick
      test_demons_split_equivalence;
    Alcotest.test_case "blackbox cadence param is validated" `Quick
      test_params_blackbox_cadence_validated;
    Alcotest.test_case "chrome export shows session interleaving" `Quick
      test_session_trace_export;
    Alcotest.test_case "script files parse and run" `Quick test_script_parser;
    Alcotest.test_case "script parser rejects malformed steps" `Quick
      test_script_parser_rejects_garbage;
  ]
