(* Tests for the workload library: the size distribution's 50%/8% shape,
   MakeDo running identically across all three file systems, bulk
   helpers, the fake file server, and the measurement plumbing. *)

open Cedar_util
open Cedar_disk
open Cedar_fsbase
open Cedar_workload

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let fsd_ops () =
  let clock = Simclock.create () in
  let device = Device.create ~clock Geometry.small_test in
  Cedar_fsd.Fsd.format device (Cedar_fsd.Params.for_geometry Geometry.small_test);
  Cedar_fsd.Fsd.ops (fst (Cedar_fsd.Fsd.boot device))

let cfs_ops () =
  let clock = Simclock.create () in
  let device = Device.create ~clock Geometry.small_test in
  Cedar_cfs.Cfs.format device (Cedar_cfs.Cfs_layout.params_for_geometry Geometry.small_test);
  match Cedar_cfs.Cfs.boot device with
  | `Ok fs -> Cedar_cfs.Cfs.ops fs
  | `Needs_scavenge -> Alcotest.fail "cfs boot"

let ufs_ops () =
  let clock = Simclock.create () in
  let device = Device.create ~clock Geometry.small_test in
  Cedar_unixfs.Ufs.mkfs device (Cedar_unixfs.Ufs_params.for_geometry Geometry.small_test);
  match Cedar_unixfs.Ufs.mount device with
  | `Ok fs -> Cedar_unixfs.Ufs.ops fs
  | `Needs_fsck -> Alcotest.fail "ufs mount"

(* ------------------------------------------------------------------ *)
(* Sizes                                                               *)

let test_size_distribution_shape () =
  (* §5.6: "50% of files are less than 4,000 bytes but use only 8% of
     the sectors." *)
  let small_files, small_bytes = Sizes.check_distribution (Rng.create 5) ~samples:20_000 in
  check bool
    (Printf.sprintf "about half the files are small (%.2f)" small_files)
    true
    (small_files > 0.45 && small_files < 0.55);
  check bool
    (Printf.sprintf "small files hold ~8%% of bytes (%.3f)" small_bytes)
    true
    (small_bytes > 0.05 && small_bytes < 0.12)

let test_sizes_positive () =
  let rng = Rng.create 9 in
  for _ = 1 to 1000 do
    if Sizes.sample rng < 1 then Alcotest.fail "zero-sized sample"
  done

(* ------------------------------------------------------------------ *)
(* Remote                                                              *)

let test_remote_publish_fetch () =
  let s = Remote.create ~name:"ivy" ~seed:3 in
  Remote.publish s ~path:"a" (Bytes.of_string "data-a");
  check bool "fetch" true (Remote.fetch s ~path:"a" = Some (Bytes.of_string "data-a"));
  check bool "missing" true (Remote.fetch s ~path:"b" = None);
  let data = Remote.publish_random s ~path:"c" (Rng.create 4) in
  check bool "random published" true (Remote.fetch s ~path:"c" = Some data);
  check (Alcotest.list Alcotest.string) "paths sorted" [ "a"; "c" ] (Remote.paths s)

(* ------------------------------------------------------------------ *)
(* Measure                                                             *)

let test_measure_counts () =
  let ops = fsd_ops () in
  let _, s =
    Measure.run ops (fun () ->
        ignore (ops.Fs_ops.create ~name:"m" ~data:(Bytes.make 600 'x')))
  in
  check int "one io" 1 s.Measure.ios;
  check int "one write" 1 s.Measure.writes;
  check bool "time advanced" true (s.Measure.elapsed_us > 0)

let test_bandwidth_fraction () =
  let g = Geometry.trident_t300 in
  (* moving exactly one sector in exactly one sector-time = 100% *)
  let f =
    Measure.bandwidth_fraction g ~bytes_moved:g.Geometry.sector_bytes
      ~elapsed_us:(Geometry.sector_time_us g)
  in
  check bool "full rate ~1.0" true (abs_float (f -. 1.0) < 0.05)

(* ------------------------------------------------------------------ *)
(* Bulk                                                                *)

let test_bulk_roundtrip () =
  let ops = fsd_ops () in
  ignore (Bulk.create_many ops ~dir:"d" ~n:25 ~bytes_each:300);
  ignore (Bulk.list_dir ops ~dir:"d" ~expect:25);
  ignore (Bulk.read_many ops ~dir:"d" ~n:25);
  ignore (Bulk.delete_many ops ~dir:"d" ~n:25);
  check int "all deleted" 0 (List.length (ops.Fs_ops.list ~prefix:"d/"))

(* ------------------------------------------------------------------ *)
(* MakeDo across all three systems                                     *)

let makedo_spec = { Makedo.default with Makedo.modules = 8 }

let expected_names spec =
  List.concat
    [
      List.init spec.Makedo.modules (fun i -> Makedo.source_name i);
      List.init spec.Makedo.modules (fun i -> Makedo.object_name i);
      [ Makedo.df_name ];
    ]
  |> List.sort compare

(* BSD's list is per-directory, so enumerate the build's directories
   rather than using a flat prefix. *)
let run_makedo ops =
  Makedo.prepare ops makedo_spec;
  let s = Makedo.build ops makedo_spec in
  let names =
    List.concat_map
      (fun dir -> List.map (fun i -> i.Fs_ops.name) (ops.Fs_ops.list ~prefix:dir))
      [ "src/"; "bin/"; "build/" ]
    |> List.sort compare
  in
  (s, names)

let test_makedo_same_result_everywhere () =
  let _, fsd_names = run_makedo (fsd_ops ()) in
  let _, cfs_names = run_makedo (cfs_ops ()) in
  let _, ufs_names = run_makedo (ufs_ops ()) in
  let expected = expected_names makedo_spec in
  check (Alcotest.list Alcotest.string) "fsd names" expected fsd_names;
  check (Alcotest.list Alcotest.string) "cfs names" expected cfs_names;
  check (Alcotest.list Alcotest.string) "ufs names" expected ufs_names

let test_makedo_temps_deleted () =
  List.iter
    (fun ops ->
      Makedo.prepare ops makedo_spec;
      ignore (Makedo.build ops makedo_spec);
      check int "no temps left" 0 (List.length (ops.Fs_ops.list ~prefix:"tmp/")))
    [ fsd_ops (); cfs_ops (); ufs_ops () ]

let test_makedo_fsd_beats_cfs_on_ios () =
  let fsd_s, _ = run_makedo (fsd_ops ()) in
  let cfs_s, _ = run_makedo (cfs_ops ()) in
  check bool
    (Printf.sprintf "cfs %d > fsd %d ios" cfs_s.Measure.ios fsd_s.Measure.ios)
    true
    (cfs_s.Measure.ios > fsd_s.Measure.ios)

(* ------------------------------------------------------------------ *)
(* Script substitution: {c} and {v}                                    *)

let string = Alcotest.string

let test_script_substitution () =
  let text = "create {c}/{v}/a.mesa 100\nread {v}/lib.mesa\nlist {c}/" in
  let script =
    match Concurrent.parse_script text with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  (* client 5 of 4 volumes lands on shard 1; {v} must expand to a
     top-level directory that routes there. *)
  let vdir = Cedar_fsbase.Fname.shard_dir ~shards:4 (5 mod 4) in
  (match Concurrent.instantiate ~volumes:4 script ~client:5 with
  | [
   Concurrent.Op (Concurrent.Create { name = c; _ });
   Concurrent.Op (Concurrent.Read r);
   Concurrent.Op (Concurrent.List l);
  ] ->
    check string "{c} and {v} both expand" ("c05/" ^ vdir ^ "/a.mesa") c;
    check string "{v} expands alone" (vdir ^ "/lib.mesa") r;
    check string "{c} in list prefix" "c05/" l;
    check int "expanded name routes to client's shard" 1
      (Cedar_fsbase.Fname.shard ~shards:4 r)
  | _ -> Alcotest.fail "unexpected script shape");
  (* Default volumes = 1: {v} is the constant v0 directory. *)
  (match Concurrent.instantiate script ~client:2 with
  | Concurrent.Op (Concurrent.Create { name; _ }) :: _ ->
    check string "single-volume {v}" "c02/v0/a.mesa" name
  | _ -> Alcotest.fail "unexpected script shape")

let test_script_substitution_errors () =
  (match Concurrent.parse_script "create {v}/a.mesa" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "create without a byte count must not parse");
  (match Concurrent.parse_script "rename a b" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown verb must not parse");
  check bool "volumes < 1 rejected" true
    (match Concurrent.instantiate ~volumes:0 [] ~client:0 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_shard_scripts_pin_clients () =
  let scripts =
    Array.init 5 (fun client ->
        [ Concurrent.Op (Concurrent.Create { name = "x/f"; bytes = 64; fill = client }) ])
  in
  let sharded = Concurrent.shard_scripts scripts ~volumes:3 in
  Array.iteri
    (fun client script ->
      match script with
      | [ Concurrent.Op (Concurrent.Create { name; _ }) ] ->
        check int
          (Printf.sprintf "client %d routes to its volume" client)
          (client mod 3)
          (Cedar_fsbase.Fname.shard ~shards:3 name)
      | _ -> Alcotest.fail "unexpected script shape")
    sharded

let suite =
  [
    ("size distribution: 50%/8% shape", `Quick, test_size_distribution_shape);
    ("sizes never zero", `Quick, test_sizes_positive);
    ("remote publish/fetch", `Quick, test_remote_publish_fetch);
    ("measure counts ios and time", `Quick, test_measure_counts);
    ("bandwidth fraction calibration", `Quick, test_bandwidth_fraction);
    ("bulk helpers roundtrip", `Quick, test_bulk_roundtrip);
    ("makedo: same files on all systems", `Quick, test_makedo_same_result_everywhere);
    ("makedo: temps deleted", `Quick, test_makedo_temps_deleted);
    ("makedo: fsd beats cfs on ios", `Quick, test_makedo_fsd_beats_cfs_on_ios);
    ("script substitution: {c} and {v}", `Quick, test_script_substitution);
    ("script substitution: error paths", `Quick, test_script_substitution_errors);
    ("shard_scripts pins clients to volumes", `Quick, test_shard_scripts_pin_clients);
  ]
