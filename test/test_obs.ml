(* Observability: the ring-buffer trace, the metrics registry, and the
   table replayers — including the hand-counted Tables 3/4 analogue for
   the scripted workload behind [cedar stats]. *)

open Cedar_util
open Cedar_disk
open Cedar_obs
module Fsd = Cedar_fsd.Fsd
module Params = Cedar_fsd.Params
module Script = Cedar_workload.Obs_script

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let string = Alcotest.string

let content n seed = Bytes.init n (fun i -> Char.chr ((i + seed) mod 251))

let small_fs () =
  let clock = Simclock.create () in
  let device = Device.create ~clock Geometry.small_test in
  Fsd.format device (Params.for_geometry Geometry.small_test);
  (device, fst (Fsd.boot device))

(* ------------------------------------------------------------------ *)
(* Ring buffer                                                         *)

let test_ring_wraparound () =
  let tr = Trace.create () in
  check bool "disabled by default" false (Trace.enabled tr);
  Trace.enable ~capacity:8 tr;
  for i = 1 to 20 do
    Trace.emit tr ~at:i (Trace.Log_force { units = i; empty = false })
  done;
  check int "length capped at capacity" 8 (Trace.length tr);
  check int "overwritten entries counted" 12 (Trace.dropped tr);
  let seqs = List.map (fun e -> e.Trace.seq) (Trace.to_list tr) in
  check (Alcotest.list int) "oldest-first, newest survive"
    [ 13; 14; 15; 16; 17; 18; 19; 20 ] seqs;
  Trace.clear tr;
  check int "clear empties" 0 (Trace.length tr);
  check int "clear resets dropped" 0 (Trace.dropped tr)

let test_disabled_is_inert () =
  let tr = Trace.create () in
  Trace.emit tr ~at:0 (Trace.Leader_piggyback { sector = 1 });
  check int "emit on a disabled trace records nothing" 0 (Trace.length tr);
  check int "begin_span returns the null span" 0
    (Trace.begin_span tr ~at:0 ~op:"x" ~name:"");
  Trace.end_span tr ~at:1 0;
  Trace.enable ~capacity:4 tr;
  Trace.emit tr ~at:2 (Trace.Leader_piggyback { sector = 2 });
  (* Disabled emission must not have consumed sequence numbers: the
     first real entry is #1 (the disabled path is a single branch). *)
  (match Trace.to_list tr with
  | [ e ] -> check int "no seq consumed while disabled" 1 e.Trace.seq
  | l -> Alcotest.failf "expected 1 entry, got %d" (List.length l));
  Trace.disable tr;
  Trace.emit tr ~at:3 (Trace.Leader_piggyback { sector = 3 });
  check int "entries survive disable; no new ones" 1 (Trace.length tr)

let test_span_nesting () =
  let tr = Trace.create () in
  Trace.enable tr;
  let outer = Trace.begin_span tr ~at:0 ~op:"outer" ~name:"o" in
  Trace.emit tr ~at:1 (Trace.Leader_piggyback { sector = 7 });
  let inner = Trace.begin_span tr ~at:2 ~op:"inner" ~name:"i" in
  Trace.emit tr ~at:3 (Trace.Dev_read { dev = 0; sector = 0; count = 1; us = 5 });
  Trace.end_span tr ~at:4 inner;
  Trace.emit tr ~at:5
    (Trace.Dev_write { dev = 0; sector = 0; count = 1; us = 5 });
  Trace.end_span tr ~at:6 outer;
  match Trace.to_list tr with
  | [ a; b; c; d; e; f; g ] ->
    check int "outer opens at top level" 0 a.Trace.span;
    check int "event under outer" outer b.Trace.span;
    check int "inner opens under outer" outer c.Trace.span;
    check int "event under inner" inner d.Trace.span;
    check int "inner close carries its own span" inner e.Trace.span;
    check int "after inner closes, outer is current again" outer f.Trace.span;
    check int "outer close" outer g.Trace.span;
    (match e.Trace.event with
    | Trace.Op_end { op; us } ->
      check string "inner op" "inner" op;
      check int "inner duration" 2 us
    | _ -> Alcotest.fail "expected Op_end")
  | l -> Alcotest.failf "expected 7 entries, got %d" (List.length l)

let test_abandoned_span_unwound () =
  let tr = Trace.create () in
  Trace.enable tr;
  let outer = Trace.begin_span tr ~at:0 ~op:"outer" ~name:"" in
  let _inner = Trace.begin_span tr ~at:1 ~op:"inner" ~name:"" in
  (* inner never closed (exception path); closing outer discards it *)
  Trace.end_span tr ~at:2 outer;
  Trace.emit tr ~at:3 (Trace.Leader_piggyback { sector = 1 });
  let last = List.nth (Trace.to_list tr) 3 in
  check int "back at top level" 0 last.Trace.span

(* ------------------------------------------------------------------ *)
(* Metrics registry                                                    *)

let test_metrics_registry () =
  let m = Metrics.create () in
  let c = Metrics.counter m "x.count" in
  Metrics.inc c;
  Metrics.add c 4;
  check (Alcotest.option int) "counter read" (Some 5) (Metrics.read m "x.count");
  check int "handle read" 5 (Metrics.counter_value c);
  let cell = ref 7 in
  Metrics.gauge m "x.gauge" (fun () -> !cell);
  cell := 9;
  check (Alcotest.option int) "gauge samples live state" (Some 9)
    (Metrics.read m "x.gauge");
  let d = Metrics.dist m "x.dist" in
  Stats.add d 3.0;
  check bool "dist registered" true (Metrics.read_dist m "x.dist" <> None);
  check (Alcotest.option int) "dist is not a counter" None (Metrics.read m "x.dist");
  (* Re-registration replaces with a fresh zeroed cell (per-boot reset). *)
  let c2 = Metrics.counter m "x.count" in
  check (Alcotest.option int) "re-register zeroes" (Some 0) (Metrics.read m "x.count");
  Metrics.inc c;
  (* the detached old handle must not affect the registry *)
  check (Alcotest.option int) "old handle detached" (Some 0) (Metrics.read m "x.count");
  Metrics.inc c2;
  check (Alcotest.option int) "new handle live" (Some 1) (Metrics.read m "x.count");
  let names = List.map fst (Metrics.snapshot m) in
  check (Alcotest.list string) "snapshot is name-sorted"
    (List.sort compare names) names

let test_jsonb () =
  let j =
    Jsonb.Obj
      [
        ("a", Jsonb.Int 1);
        ("s", Jsonb.Str "x\"y\n");
        ("l", Jsonb.Arr [ Jsonb.Bool true; Jsonb.Null; Jsonb.Float 1.5 ]);
      ]
  in
  check string "compact encoding"
    "{\"a\":1,\"s\":\"x\\\"y\\n\",\"l\":[true,null,1.5]}" (Jsonb.to_string j);
  check string "integral floats keep a decimal point" "[2.0]"
    (Jsonb.to_string (Jsonb.Arr [ Jsonb.Float 2.0 ]))

(* ------------------------------------------------------------------ *)
(* Event sequences per §4/§5: what each FSD operation costs            *)

(* Salient event kinds, with seeks dropped (they depend on arm position). *)
let kinds entries =
  List.filter_map
    (fun e ->
      match e.Trace.event with
      | Trace.Dev_seek _ -> None
      | Trace.Dev_read _ -> Some "dev-read"
      | Trace.Dev_write _ -> Some "dev-write"
      | Trace.Log_append _ -> Some "log-append"
      | Trace.Log_force { empty = true; _ } -> Some "log-force-empty"
      | Trace.Log_force _ -> Some "log-force"
      | Trace.Fnt_write_twice _ -> Some "fnt-write-twice"
      | Trace.Leader_piggyback _ -> Some "leader-piggyback"
      | Trace.Blackbox_checkpoint _ -> Some "blackbox-checkpoint"
      | Trace.Op_begin { op; _ } -> Some ("begin:" ^ op)
      | Trace.Op_end { op; _ } -> Some ("end:" ^ op)
      | _ -> None)
    entries

let traced_kinds device f =
  let tr = Device.trace device in
  Trace.clear tr;
  Trace.enable tr;
  f ();
  Trace.disable tr;
  kinds (Trace.to_list tr)

let seq = Alcotest.list string

let test_op_event_sequences () =
  let device, fs = small_fs () in
  (* Warm the name-table cache so the sequences are steady-state. *)
  ignore (Fsd.create fs ~name:"s/warm" (content 100 0));
  Fsd.force fs;
  (* create: exactly one combined leader+data write, nothing logged yet *)
  check seq "create = one combined write (§5.3)"
    [ "begin:create"; "dev-write"; "end:create" ]
    (traced_kinds device (fun () ->
         ignore (Fsd.create fs ~name:"s/f1" (content 900 1))));
  (* force: the pending FNT update goes out as one log record, then the
     black box checkpoints the trace tail in its own span. This first
     checkpoint of the boot also probes both slots (two reads) to pick
     the next generation. *)
  check seq "force = append + force + black-box checkpoint (§5.4)"
    [
      "begin:force";
      "dev-write";
      "log-append";
      "log-force";
      "begin:blackbox";
      "dev-read";
      "dev-read";
      "dev-write";
      "blackbox-checkpoint";
      "end:blackbox";
      "end:force";
    ]
    (traced_kinds device (fun () -> Fsd.force fs));
  (* a second force with nothing dirty writes nothing *)
  check seq "empty force costs no I/O"
    [ "begin:force"; "log-force-empty"; "end:force" ]
    (traced_kinds device (fun () -> Fsd.force fs));
  (* write_page: data page rewritten in place *)
  check seq "write_page = one data write"
    [ "begin:write_page"; "dev-write"; "end:write_page" ]
    (traced_kinds device (fun () ->
         Fsd.write_page fs ~name:"s/f1" ~page:0 (content 512 2)));
  (* delete: pure metadata, absorbed by group commit (§5.4) *)
  check seq "delete costs no I/O"
    [ "begin:delete"; "end:delete" ]
    (traced_kinds device (fun () -> Fsd.delete fs ~name:"s/f1"))

(* ------------------------------------------------------------------ *)
(* Table replayers on the scripted workload (the [cedar stats] path)   *)

let scripted_entries () =
  let device, fs = small_fs () in
  let ops = Fsd.ops fs in
  Script.warmup ops;
  let tr = Device.trace device in
  Trace.enable tr;
  Script.scripted ops;
  Trace.disable tr;
  Trace.to_list tr

let test_per_op_hand_counts () =
  let entries = scripted_entries () in
  let rows = Tables.per_op entries in
  let row op =
    match List.find_opt (fun r -> r.Tables.op = op) rows with
    | Some r -> r
    | None -> Alcotest.failf "no per-op row for %s" op
  in
  (* Hand-counted Tables 3/4 analogue for n=10 files of 900 bytes:
     create = 1 combined leader+data write (1 leader + 2 data sectors),
     open/delete/list = 0 I/Os, warm read_all = 1 read of 2 sectors. *)
  let c = row "create" in
  check int "create calls" Script.n c.Tables.calls;
  check int "create reads" 0 c.Tables.reads;
  check int "create writes" Script.n c.Tables.writes;
  check int "create sectors written" (3 * Script.n) c.Tables.sectors_written;
  let o = row "open" in
  check int "open calls" Script.n o.Tables.calls;
  check int "open I/Os" 0 (o.Tables.reads + o.Tables.writes);
  let d = row "delete" in
  check int "delete calls" Script.n d.Tables.calls;
  check int "delete I/Os" 0 (d.Tables.reads + d.Tables.writes);
  let l = row "list" in
  check int "list calls" 1 l.Tables.calls;
  check int "list I/Os" 0 (l.Tables.reads + l.Tables.writes);
  let r = row "read_all" in
  check int "read calls" Script.n r.Tables.calls;
  check int "read reads" Script.n r.Tables.reads;
  check int "read writes" 0 r.Tables.writes;
  check int "read sectors" (2 * Script.n) r.Tables.sectors_read;
  let f = row "force" in
  check int "force calls" 2 f.Tables.calls;
  check int "force reads" 0 f.Tables.reads;
  check int "force writes: one log record each" 2 f.Tables.writes;
  (* The black-box checkpoint I/O is its own column — one slot write per
     (non-empty) force plus the one-time two-slot probe — so the force
     row above stays an honest Tables 3/4 analogue. *)
  let bb = row "blackbox" in
  check int "blackbox calls" 2 bb.Tables.calls;
  check int "blackbox probe reads both slots once" 2 bb.Tables.reads;
  check int "blackbox probe sectors"
    (2 * Params.blackbox_slot_sectors)
    bb.Tables.sectors_read;
  check int "blackbox writes one slot per force" 2 bb.Tables.writes;
  check int "blackbox sectors written"
    (2 * Params.blackbox_slot_sectors)
    bb.Tables.sectors_written

(* Amortised attribution: force-interval log I/O redistributed across
   the batch's mutating ops. Redistribution only moves write I/O
   between rows, so the totals must be conserved exactly, and the ops
   that are free under raw attribution (delete — pure metadata) must
   show their share of the log record they ride in. *)
let test_amortised_attribution () =
  let entries = scripted_entries () in
  let rows = Tables.per_op entries in
  let row op = List.find (fun r -> r.Tables.op = op) rows in
  let fsum f = List.fold_left (fun a r -> a +. f r) 0.0 rows in
  let isum f = List.fold_left (fun a r -> a + f r) 0 rows in
  let fl = Alcotest.float 1e-6 in
  check fl "write count conserved"
    (float_of_int (isum (fun r -> r.Tables.writes)))
    (fsum (fun r -> r.Tables.amortised_writes));
  check fl "sectors written conserved"
    (float_of_int (isum (fun r -> r.Tables.sectors_written)))
    (fsum (fun r -> r.Tables.amortised_sectors_written));
  let d = row "delete" in
  check int "delete raw I/O stays zero" 0 (d.Tables.reads + d.Tables.writes);
  check bool "delete carries its share of the force" true
    (d.Tables.amortised_ios > 0.0
    && d.Tables.amortised_sectors_written > 0.0);
  let f = row "force" in
  check bool "force surrenders its append writes" true
    (f.Tables.amortised_writes < float_of_int f.Tables.writes);
  (* reads are untouched by amortisation *)
  let r = row "read_all" in
  check fl "read row: amortised = raw"
    (float_of_int (r.Tables.reads + r.Tables.writes))
    r.Tables.amortised_ios

let test_log_activity () =
  let entries = scripted_entries () in
  let log = Tables.log_activity entries in
  check int "records" 2 log.Tables.records;
  check int "forces" 2 log.Tables.forces;
  check int "empty forces" 0 log.Tables.empty_forces;
  check bool "every record carries data" true (log.Tables.data_sectors > 0);
  check bool "headers cost extra sectors" true
    (log.Tables.total_sectors > log.Tables.data_sectors)

let test_recovery_phases_traced () =
  let device, fs = small_fs () in
  ignore (Fsd.create fs ~name:"r/a" (content 400 1));
  Fsd.force fs;
  ignore (Fsd.create fs ~name:"r/b" (content 400 2));
  (* crash: boot again with no shutdown, tracing the recovery *)
  let tr = Device.trace device in
  Trace.enable tr;
  let _fs2, report = Fsd.boot device in
  Trace.disable tr;
  let phases = Tables.recovery_phases (Trace.to_list tr) in
  let names = List.map (fun p -> p.Tables.phase) phases in
  check bool "log-replay phase present" true (List.mem "log-replay" names);
  check bool "vam phase present" true
    (List.exists
       (fun n -> String.length n > 4 && String.sub n 0 4 = "vam-")
       names);
  check bool "total present" true (List.mem "total" names);
  let us_of p = (List.find (fun r -> r.Tables.phase = p) phases).Tables.us in
  check int "total matches the boot report" report.Fsd.total_us (us_of "total")

let suite =
  [
    ("ring wrap-around", `Quick, test_ring_wraparound);
    ("disabled trace is inert", `Quick, test_disabled_is_inert);
    ("span nesting", `Quick, test_span_nesting);
    ("abandoned span unwound", `Quick, test_abandoned_span_unwound);
    ("metrics registry", `Quick, test_metrics_registry);
    ("json builder", `Quick, test_jsonb);
    ("op event sequences (§4)", `Quick, test_op_event_sequences);
    ("per-op I/O hand counts (Tables 3/4)", `Quick, test_per_op_hand_counts);
    ("amortised force attribution", `Quick, test_amortised_attribution);
    ("log activity (Table 2)", `Quick, test_log_activity);
    ("recovery phases traced (Table 5)", `Quick, test_recovery_phases_traced);
  ]
