(* File-system-level tests for FSD: lifecycle, versions, group commit,
   crash recovery, robustness. *)

open Cedar_util
open Cedar_disk
open Cedar_fsbase
open Cedar_fsd

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let fresh_volume ?(geom = Geometry.small_test) () =
  let clock = Simclock.create () in
  let device = Device.create ~clock geom in
  let params = Params.for_geometry geom in
  Fsd.format device params;
  device

let boot_fs device = fst (Fsd.boot device)

let fresh_fs ?geom () =
  let device = fresh_volume ?geom () in
  (device, boot_fs device)

let content n seed = Bytes.init n (fun i -> Char.chr ((i + seed) mod 251))

let expect_error expected f =
  match f () with
  | _ -> Alcotest.fail "expected Fs_error"
  | exception Fs_error.Fs_error e ->
    if not (expected e) then
      Alcotest.fail ("unexpected error: " ^ Fs_error.to_string e)

(* ------------------------------------------------------------------ *)
(* Basic lifecycle                                                     *)

let test_create_read_roundtrip () =
  let _, fs = fresh_fs () in
  let data = content 1800 7 in
  let info = Fsd.create fs ~name:"hello.mesa" data in
  check int "version 1" 1 info.Fs_ops.version;
  check int "byte size" 1800 info.Fs_ops.byte_size;
  check bool "roundtrip" true (Bytes.equal data (Fsd.read_all fs ~name:"hello.mesa"));
  check bool "exists" true (Fsd.exists fs ~name:"hello.mesa");
  check bool "absent" false (Fsd.exists fs ~name:"other.mesa")

let test_empty_file () =
  let _, fs = fresh_fs () in
  let info = Fsd.create fs ~name:"empty" (Bytes.create 0) in
  check int "zero bytes" 0 info.Fs_ops.byte_size;
  check int "read empty" 0 (Bytes.length (Fsd.read_all fs ~name:"empty"))

let test_read_page () =
  let _, fs = fresh_fs () in
  let data = content (3 * 512) 1 in
  ignore (Fsd.create fs ~name:"three" data);
  let p1 = Fsd.read_page fs ~name:"three" ~page:1 in
  check bool "page 1 content" true (Bytes.equal p1 (Bytes.sub data 512 512));
  expect_error
    (function Fs_error.Bad_page _ -> true | _ -> false)
    (fun () -> Fsd.read_page fs ~name:"three" ~page:3)

let test_missing_file_errors () =
  let _, fs = fresh_fs () in
  expect_error
    (function Fs_error.No_such_file _ -> true | _ -> false)
    (fun () -> Fsd.read_all fs ~name:"ghost");
  expect_error
    (function Fs_error.Bad_name _ -> true | _ -> false)
    (fun () -> Fsd.create fs ~name:"bad!name" (Bytes.create 1))

let test_versions_and_keep () =
  let _, fs = fresh_fs () in
  for v = 1 to 5 do
    let info = Fsd.create fs ~name:"prog" ~keep:3 (content 100 v) in
    check int "version increments" v info.Fs_ops.version
  done;
  (* keep=3: only versions 3,4,5 remain. *)
  check (Alcotest.list int) "kept versions" [ 3; 4; 5 ] (Fsd.versions fs ~name:"prog");
  (* reading gets the newest *)
  check bool "newest content" true
    (Bytes.equal (content 100 5) (Fsd.read_all fs ~name:"prog"))

let test_delete () =
  let _, fs = fresh_fs () in
  ignore (Fsd.create fs ~name:"a" ~keep:0 (content 10 0));
  ignore (Fsd.create fs ~name:"a" ~keep:0 (content 10 1));
  Fsd.delete fs ~name:"a";
  check (Alcotest.list int) "older version remains" [ 1 ] (Fsd.versions fs ~name:"a");
  Fsd.delete fs ~name:"a";
  check bool "gone" false (Fsd.exists fs ~name:"a");
  expect_error
    (function Fs_error.No_such_file _ -> true | _ -> false)
    (fun () -> Fsd.delete fs ~name:"a")

let test_list () =
  let _, fs = fresh_fs () in
  ignore (Fsd.create fs ~name:"src/a.mesa" (content 10 0));
  ignore (Fsd.create fs ~name:"src/b.mesa" (content 20 0));
  ignore (Fsd.create fs ~name:"src/b.mesa" (content 30 0));
  ignore (Fsd.create fs ~name:"doc/readme" (content 40 0));
  let names l = List.map (fun i -> (i.Fs_ops.name, i.Fs_ops.version)) l in
  check
    (Alcotest.list (Alcotest.pair Alcotest.string int))
    "prefix list newest versions"
    [ ("src/a.mesa", 1); ("src/b.mesa", 2) ]
    (names (Fsd.list fs ~prefix:"src/"));
  check int "all files" 3 (List.length (Fsd.list fs ~prefix:""))

let test_extend_contract () =
  let _, fs = fresh_fs () in
  ignore (Fsd.create fs ~name:"grow" (content 512 3));
  Fsd.extend fs ~name:"grow" ~pages:3;
  let info = Fsd.open_stat fs ~name:"grow" in
  check int "grown" (4 * 512) info.Fs_ops.byte_size;
  Fsd.write_page fs ~name:"grow" ~page:3 (content 512 9);
  check bool "page 3 written" true
    (Bytes.equal (content 512 9) (Fsd.read_page fs ~name:"grow" ~page:3));
  let free_before = Fsd.free_sectors fs in
  Fsd.contract fs ~name:"grow" ~pages:1;
  Fsd.force fs;
  check bool "pages freed at commit" true (Fsd.free_sectors fs > free_before);
  check int "shrunk" 512 (Fsd.open_stat fs ~name:"grow").Fs_ops.byte_size;
  expect_error
    (function Fs_error.Bad_page _ -> true | _ -> false)
    (fun () -> Fsd.read_page fs ~name:"grow" ~page:1)

let test_empty_then_extend () =
  let device, fs = fresh_fs () in
  ignore (Fsd.create_empty fs ~name:"sparse" ~pages:0 ());
  Fsd.extend fs ~name:"sparse" ~pages:2;
  Fsd.write_page fs ~name:"sparse" ~page:0 (content 512 1);
  Fsd.write_page fs ~name:"sparse" ~page:1 (content 512 2);
  (* the leader is not adjacent to pages allocated later; reads must
     still verify it (separately) and succeed *)
  check bool "page 0" true (Bytes.equal (content 512 1) (Fsd.read_page fs ~name:"sparse" ~page:0));
  check bool "page 1" true (Bytes.equal (content 512 2) (Fsd.read_page fs ~name:"sparse" ~page:1));
  Fsd.force fs;
  let fs2, _ = Fsd.boot device in
  check bool "persisted" true
    (Bytes.equal (content 512 2) (Fsd.read_page fs2 ~name:"sparse" ~page:1));
  check bool "check" true (Fsd.check fs2 = Ok ())

let test_contract_to_zero_then_extend () =
  let _, fs = fresh_fs () in
  ignore (Fsd.create fs ~name:"yo-yo" (content 2048 3));
  Fsd.contract fs ~name:"yo-yo" ~pages:0;
  check int "empty now" 0 (Fsd.open_stat fs ~name:"yo-yo").Fs_ops.byte_size;
  Fsd.extend fs ~name:"yo-yo" ~pages:1;
  Fsd.write_page fs ~name:"yo-yo" ~page:0 (content 512 4);
  check bool "regrown" true (Bytes.equal (content 512 4) (Fsd.read_page fs ~name:"yo-yo" ~page:0));
  check bool "check" true (Fsd.check fs = Ok ())

let test_set_keep_trims () =
  let _, fs = fresh_fs () in
  for v = 1 to 6 do
    ignore (Fsd.create fs ~name:"trim" ~keep:0 (content 100 v))
  done;
  check int "six versions" 6 (List.length (Fsd.versions fs ~name:"trim"));
  Fsd.set_keep fs ~name:"trim" ~keep:2;
  check (Alcotest.list int) "trimmed to two" [ 5; 6 ] (Fsd.versions fs ~name:"trim")

let test_symlink () =
  let _, fs = fresh_fs () in
  ignore (Fsd.create fs ~name:"real" (content 77 1));
  Fsd.create_symlink fs ~name:"link" ~target:"real";
  check (Alcotest.option Alcotest.string) "readlink" (Some "real")
    (Fsd.readlink fs ~name:"link");
  check bool "read through link" true
    (Bytes.equal (content 77 1) (Fsd.read_all fs ~name:"link"));
  (* Symlink loop detection *)
  Fsd.create_symlink fs ~name:"loop1" ~target:"loop2";
  Fsd.create_symlink fs ~name:"loop2" ~target:"loop1";
  expect_error
    (function Fs_error.Corrupt_metadata _ -> true | _ -> false)
    (fun () -> Fsd.read_all fs ~name:"loop1")

let test_rename () =
  let device, fs = fresh_fs () in
  let data = content 1200 4 in
  ignore (Fsd.create fs ~name:"old-name" data);
  Fsd.rename fs ~from_:"old-name" ~to_:"new-name";
  check bool "gone from old" false (Fsd.exists fs ~name:"old-name");
  check bool "at new" true (Bytes.equal data (Fsd.read_all fs ~name:"new-name"));
  expect_error
    (function Fs_error.Bad_name _ -> true | _ -> false)
    (fun () ->
      ignore (Fsd.create fs ~name:"blocker" (content 10 0));
      Fsd.rename fs ~from_:"new-name" ~to_:"blocker");
  (* the rename is atomic across a crash once committed *)
  Fsd.force fs;
  let fs2, _ = Fsd.boot device in
  check bool "rename survived" true (Bytes.equal data (Fsd.read_all fs2 ~name:"new-name"));
  check bool "old still gone" false (Fsd.exists fs2 ~name:"old-name");
  check bool "check" true (Fsd.check fs2 = Ok ())

let test_rename_no_io () =
  let device, fs = fresh_fs () in
  ignore (Fsd.create fs ~name:"here" (content 500 1));
  Fsd.force fs;
  let before = (Device.stats device).Iostats.ios in
  Fsd.rename fs ~from_:"here" ~to_:"there";
  check int "rename does no io" before (Device.stats device).Iostats.ios

let test_copy () =
  let _, fs = fresh_fs () in
  let data = content 2600 8 in
  ignore (Fsd.create fs ~name:"src" data);
  let info = Fsd.copy fs ~from_:"src" ~to_:"dst" in
  check bool "copy content" true (Bytes.equal data (Fsd.read_all fs ~name:"dst"));
  check bool "source intact" true (Bytes.equal data (Fsd.read_all fs ~name:"src"));
  check bool "distinct uids" true
    (info.Fs_ops.uid <> (Fsd.open_stat fs ~name:"src").Fs_ops.uid)

let test_inspect_report () =
  let _, fs = fresh_fs () in
  ignore (Fsd.create fs ~name:"ins/a" (content 600 1));
  Fsd.create_symlink fs ~name:"ins/l" ~target:"ins/a";
  ignore (Fsd.import_cached fs ~name:"ins/c" ~server:"ivy" (content 300 2));
  Fsd.force fs;
  let report = Inspect.volume_report fs in
  let has sub =
    let n = String.length sub and m = String.length report in
    let rec go i = i + n <= m && (String.sub report i n = sub || go (i + 1)) in
    go 0
  in
  check bool "mentions entries" true (has "1 local, 1 symlinks, 1 cached");
  check bool "mentions records" true (has "surviving records");
  check bool "mentions free sectors" true (has "free sectors")

let test_cached_last_used () =
  let _, fs = fresh_fs () in
  ignore (Fsd.import_cached fs ~name:"rem/cache.bcd" ~server:"ivy" (content 200 4));
  let t0 = Option.get (Fsd.last_used fs ~name:"rem/cache.bcd") in
  Fsd.tick fs ~us:10_000;
  Fsd.touch_cached fs ~name:"rem/cache.bcd";
  let t1 = Option.get (Fsd.last_used fs ~name:"rem/cache.bcd") in
  check bool "last used advanced" true (t1 > t0);
  check bool "content intact" true
    (Bytes.equal (content 200 4) (Fsd.read_all fs ~name:"rem/cache.bcd"))

(* ------------------------------------------------------------------ *)
(* Persistence                                                         *)

let test_clean_shutdown_reboot () =
  let device, fs = fresh_fs () in
  let data = content 3000 5 in
  ignore (Fsd.create fs ~name:"persist.df" data);
  Fsd.shutdown fs;
  let fs2, report = Fsd.boot device in
  check bool "vam loaded from clean save" true (report.Fsd.vam_source = Fsd.Vam_loaded);
  check bool "content after reboot" true
    (Bytes.equal data (Fsd.read_all fs2 ~name:"persist.df"));
  check bool "check passes" true (Fsd.check fs2 = Ok ())

let test_ops_after_shutdown_rejected () =
  let _, fs = fresh_fs () in
  Fsd.shutdown fs;
  expect_error
    (function Fs_error.Not_booted -> true | _ -> false)
    (fun () -> Fsd.create fs ~name:"x" (Bytes.create 1))

let test_crash_committed_survives () =
  let device, fs = fresh_fs () in
  let data = content 900 6 in
  ignore (Fsd.create fs ~name:"committed" data);
  Fsd.force fs;
  (* Crash: drop the instance without shutdown. *)
  let fs2, report = Fsd.boot device in
  check bool "vam reconstructed" true (report.Fsd.vam_source = Fsd.Vam_reconstructed);
  check bool "replayed something" true (report.Fsd.replayed_records >= 1);
  check bool "committed file present" true
    (Bytes.equal data (Fsd.read_all fs2 ~name:"committed"));
  check bool "check passes" true (Fsd.check fs2 = Ok ())

let test_crash_uncommitted_lost_cleanly () =
  let device, fs = fresh_fs () in
  ignore (Fsd.create fs ~name:"survivor" (content 100 1));
  Fsd.force fs;
  let free_committed = Fsd.free_sectors fs in
  (* This create is never committed. *)
  ignore (Fsd.create fs ~name:"phantom" (content 100 2));
  let fs2, _ = Fsd.boot device in
  check bool "survivor present" true (Fsd.exists fs2 ~name:"survivor");
  check bool "phantom gone" false (Fsd.exists fs2 ~name:"phantom");
  (* Its pages were reclaimed by the VAM rebuild. *)
  check int "space reclaimed" free_committed (Fsd.free_sectors fs2);
  check bool "check passes" true (Fsd.check fs2 = Ok ())

let test_crash_uncommitted_delete_keeps_file () =
  let device, fs = fresh_fs () in
  let data = content 700 3 in
  ignore (Fsd.create fs ~name:"keepme" data);
  Fsd.force fs;
  Fsd.delete fs ~name:"keepme";
  (* crash before the delete commits *)
  let fs2, _ = Fsd.boot device in
  check bool "file still there" true
    (Bytes.equal data (Fsd.read_all fs2 ~name:"keepme"))

let test_crash_committed_delete_stays_deleted () =
  let device, fs = fresh_fs () in
  ignore (Fsd.create fs ~name:"doomed" (content 700 3));
  Fsd.force fs;
  let free_before_delete = Fsd.free_sectors fs in
  Fsd.delete fs ~name:"doomed";
  Fsd.force fs;
  let fs2, _ = Fsd.boot device in
  check bool "stays deleted" false (Fsd.exists fs2 ~name:"doomed");
  check bool "space reclaimed after reboot" true
    (Fsd.free_sectors fs2 > free_before_delete)

let test_group_commit_interval () =
  let _, fs = fresh_fs () in
  ignore (Fsd.create fs ~name:"f1" (content 10 0));
  let before = (Fsd.counters fs).Fsd.forces in
  (* Half a second of idle time fires the commit demon. *)
  Fsd.tick fs ~us:600_000;
  check int "force fired" (before + 1) (Fsd.counters fs).Fsd.forces;
  (* Idle ticks with nothing pending count as empty forces. *)
  Fsd.tick fs ~us:600_000;
  check bool "empty force" true ((Fsd.counters fs).Fsd.empty_forces >= 1)

let test_torn_group_commit () =
  let device, fs = fresh_fs () in
  ignore (Fsd.create fs ~name:"safe" (content 300 1));
  Fsd.force fs;
  ignore (Fsd.create fs ~name:"halfway" (content 300 2));
  (* Crash in the middle of the log record of this force. *)
  Device.plan_write_crash device ~after_sectors:4 ~damage_tail:2;
  (match Fsd.force fs with
  | () -> Alcotest.fail "expected crash during force"
  | exception Device.Crash_during_write _ -> ());
  let fs2, _ = Fsd.boot device in
  check bool "earlier commit survived" true (Fsd.exists fs2 ~name:"safe");
  check bool "torn commit discarded" false (Fsd.exists fs2 ~name:"halfway");
  check bool "check passes" true (Fsd.check fs2 = Ok ())

let test_repeated_crashes () =
  let device, fs = fresh_fs () in
  let fs = ref fs in
  for round = 1 to 6 do
    let name = Printf.sprintf "round-%d" round in
    ignore (Fsd.create !fs ~name (content 256 round));
    Fsd.force !fs;
    (* crash and reboot *)
    let fs2, _ = Fsd.boot device in
    fs := fs2;
    for earlier = 1 to round do
      let name = Printf.sprintf "round-%d" earlier in
      check bool (name ^ " survived") true
        (Bytes.equal (content 256 earlier) (Fsd.read_all !fs ~name))
    done
  done;
  check bool "final check" true (Fsd.check !fs = Ok ())

(* ------------------------------------------------------------------ *)
(* Robustness against sector damage                                    *)

let test_fnt_copy_damage_repaired () =
  let device, fs = fresh_fs () in
  ignore (Fsd.create fs ~name:"important" (content 2000 8));
  Fsd.shutdown fs;
  (* Cycle once more so the log holds no records that would heal the
     damage during replay; we want the read path to do the repairing. *)
  let fs1 = boot_fs device in
  Fsd.shutdown fs1;
  let layout = Fsd.layout fs1 in
  for s = layout.Layout.fnt_a_start to layout.Layout.fnt_a_start + 40 do
    Device.damage device s
  done;
  let fs2, report = Fsd.boot device in
  check int "nothing replayed" 0 report.Fsd.replayed_records;
  check bool "file readable from copy B" true
    (Bytes.equal (content 2000 8) (Fsd.read_all fs2 ~name:"important"));
  check bool "repairs recorded" true (Fsd.fnt_repairs fs2 > 0)

let test_boot_page_replica () =
  let device, fs = fresh_fs () in
  ignore (Fsd.create fs ~name:"x" (content 10 0));
  Fsd.shutdown fs;
  Device.damage device 0;
  let fs2, _ = Fsd.boot device in
  check bool "booted from replica" true (Fsd.exists fs2 ~name:"x")

let test_data_damage_isolated_to_file () =
  let device, fs = fresh_fs () in
  ignore (Fsd.create fs ~name:"victim" (content 1024 1));
  let other = content 1024 2 in
  ignore (Fsd.create fs ~name:"bystander" other);
  let info = Fsd.open_stat fs ~name:"victim" in
  ignore info;
  (* Find the victim's data sector by reading page 0's sector via layout:
     damage both its pages. *)
  Fsd.force fs;
  (* locate via read then damage: simplest is to damage through the
     device observer; instead use the entry's run table via check: read
     page 0, then damage the sector it came from. *)
  let seen = ref (-1) in
  Device.set_observer device
    (Some (fun ~rw ~sector ~count:_ -> if rw = `R && !seen < 0 then seen := sector));
  ignore (Fsd.read_page fs ~name:"victim" ~page:0);
  Device.set_observer device None;
  check bool "observed a read" true (!seen >= 0);
  (* the observed read may have started at the leader (piggyback) *)
  Device.damage device !seen;
  Device.damage device (!seen + 1);
  expect_error
    (function Fs_error.Damaged_data _ -> true | _ -> false)
    (fun () ->
      Fsd.drop_caches fs;
      (* force re-read from disk: new boot clears the verified set *)
      ignore (Fsd.read_page fs ~name:"victim" ~page:0);
      ignore (Fsd.read_all fs ~name:"victim"));
  (* The bystander and the volume structure are unaffected. *)
  check bool "bystander fine" true (Bytes.equal other (Fsd.read_all fs ~name:"bystander"))

let test_leader_detects_wild_write () =
  let device, fs = fresh_fs () in
  ignore (Fsd.create fs ~name:"target" (content 512 1));
  Fsd.shutdown fs;
  let fs2, _ = Fsd.boot device in
  (* Simulate a wild write smashing the leader: the leader is the start
     of the first data-area read (the piggyback transfer). *)
  let layout = Fsd.layout fs2 in
  let seen = ref [] in
  Device.set_observer device
    (Some
       (fun ~rw:_ ~sector ~count ->
         if Layout.is_data_sector layout sector then seen := (sector, count) :: !seen));
  ignore (Fsd.read_all fs2 ~name:"target");
  Device.set_observer device None;
  let leader_sector =
    match List.rev !seen with
    | (sector, count) :: _ when count >= 2 -> sector
    | _ -> Alcotest.fail "expected a piggybacked leader+data read"
  in
  let rng = Rng.create 99 in
  Device.corrupt device leader_sector ~rng;
  let fs3, _ = Fsd.boot device in
  expect_error
    (function Fs_error.Corrupt_metadata _ -> true | _ -> false)
    (fun () -> Fsd.read_all fs3 ~name:"target")

(* ------------------------------------------------------------------ *)
(* I/O behaviour (the paper's headline properties)                     *)

let count_ios device f =
  let before = Iostats.copy (Device.stats device) in
  let r = f () in
  let after = Iostats.copy (Device.stats device) in
  (r, (Iostats.diff ~after ~before).Iostats.ios)

let test_create_is_one_synchronous_io () =
  let device, fs = fresh_fs () in
  (* Warm up so the FNT root etc. are cached. *)
  ignore (Fsd.create fs ~name:"warm" (content 100 0));
  Fsd.force fs;
  let _, ios =
    count_ios device (fun () -> Fsd.create fs ~name:"one-io" (content 900 1))
  in
  (* One combined leader+data write; no other I/O before the commit. *)
  check int "exactly one io" 1 ios

let test_open_does_no_io () =
  let device, fs = fresh_fs () in
  ignore (Fsd.create fs ~name:"cached-open" (content 100 0));
  Fsd.force fs;
  let _, ios = count_ios device (fun () -> Fsd.open_stat fs ~name:"cached-open") in
  check int "open without io" 0 ios

let test_delete_does_no_io () =
  let device, fs = fresh_fs () in
  ignore (Fsd.create fs ~name:"quick-delete" (content 100 0));
  Fsd.force fs;
  let _, ios = count_ios device (fun () -> Fsd.delete fs ~name:"quick-delete") in
  check int "delete without io" 0 ios

let test_list_does_no_io_when_cached () =
  let device, fs = fresh_fs () in
  for i = 1 to 20 do
    ignore (Fsd.create fs ~name:(Printf.sprintf "dir/f%02d" i) (content 64 i))
  done;
  Fsd.force fs;
  ignore (Fsd.list fs ~prefix:"dir/");
  let l, ios = count_ios device (fun () -> Fsd.list fs ~prefix:"dir/") in
  check int "20 files listed" 20 (List.length l);
  check int "no io" 0 ios

let test_group_commit_batches_many_creates () =
  let device, fs = fresh_fs () in
  ignore (Fsd.create fs ~name:"warm" (content 10 0));
  Fsd.force fs;
  let records_before = (Fsd.log_stats fs).Log.records in
  let _, ios =
    count_ios device (fun () ->
        for i = 1 to 10 do
          ignore (Fsd.create fs ~name:(Printf.sprintf "batch%02d" i) (content 400 i))
        done;
        Fsd.force fs)
  in
  let records = (Fsd.log_stats fs).Log.records - records_before in
  (* 10 creates: 10 data writes + about one log record. *)
  check bool "about 11 ios for 10 creates" true (ios <= 13);
  check bool "one or two records" true (records <= 2)

let test_empty_create_leader_goes_through_log () =
  let device, fs = fresh_fs () in
  ignore (Fsd.create_empty fs ~name:"lazy" ~pages:0 ());
  let leaders_before = (Fsd.counters fs).Fsd.leader_home_writes in
  Fsd.force fs;
  (* The leader image is in the log; reading verifies from memory. *)
  ignore (Fsd.open_stat fs ~name:"lazy");
  (* Fill the log until the third holding the leader is re-entered; the
     logging code must then write the leader home. *)
  let fs_filler = fs in
  let i = ref 0 in
  while (Fsd.counters fs).Fsd.leader_home_writes = leaders_before && !i < 3000 do
    incr i;
    ignore (Fsd.create fs_filler ~name:(Printf.sprintf "fill%04d" !i) (content 32 !i));
    Fsd.tick fs ~us:60_000
  done;
  check bool "leader written by logging code" true
    ((Fsd.counters fs).Fsd.leader_home_writes > leaders_before);
  (* And it must be valid on disk after a crash. *)
  Fsd.force fs;
  let fs2, _ = Fsd.boot device in
  check bool "lazy file valid" true (Fsd.exists fs2 ~name:"lazy");
  check bool "full check" true (Fsd.check fs2 = Ok ())

let test_vam_reconstruction_equals_tracked () =
  let device, fs = fresh_fs () in
  for i = 1 to 30 do
    ignore (Fsd.create fs ~name:(Printf.sprintf "f%03d" i) (content ((i * 97) mod 2000) i))
  done;
  for i = 1 to 30 do
    if i mod 3 = 0 then Fsd.delete fs ~name:(Printf.sprintf "f%03d" i)
  done;
  Fsd.force fs;
  let tracked = Fsd.free_sectors fs in
  (* Crash (no clean shutdown): boot must reconstruct the same VAM. *)
  let fs2, report = Fsd.boot device in
  check bool "reconstructed" true (report.Fsd.vam_source = Fsd.Vam_reconstructed);
  check int "same free count" tracked (Fsd.free_sectors fs2)

let test_save_vam_idle_then_mutate () =
  let device, fs = fresh_fs () in
  ignore (Fsd.create fs ~name:"before-save" (content 100 0));
  Fsd.save_vam fs;
  (* A mutation after the idle save must spoil it. *)
  ignore (Fsd.create fs ~name:"after-save" (content 100 1));
  Fsd.force fs;
  let _, report = Fsd.boot device in
  check bool "saved VAM not trusted after mutation" true
    (report.Fsd.vam_source = Fsd.Vam_reconstructed)

let test_save_vam_idle_no_mutation_trusted () =
  let device, fs = fresh_fs () in
  ignore (Fsd.create fs ~name:"quiet" (content 100 0));
  Fsd.save_vam fs;
  (* Reads do not spoil the saved map. *)
  ignore (Fsd.read_all fs ~name:"quiet");
  let fs2, report = Fsd.boot device in
  ignore fs2;
  check bool "saved VAM trusted when nothing changed" true
    (report.Fsd.vam_source = Fsd.Vam_loaded)

(* Property: version semantics (create bumps, keep trims, delete peels
   the newest) against a list model. *)
let prop_version_semantics =
  QCheck.Test.make ~name:"version lists match a reference model" ~count:30
    QCheck.(pair (int_bound 1_000) (small_list (pair (int_bound 3) (int_range 0 4))))
    (fun (seed, ops) ->
      let _, fs = fresh_fs () in
      let rng = Rng.create (seed + 11) in
      (* model: ascending version list; a new version is newest+1 (so the
         numbering restarts after a full deletion), and keep=k trims
         versions at or below newest-k *)
      let versions = ref [] in
      let newest () = List.fold_left max 0 !versions in
      List.iter
        (fun (op, k) ->
          match op with
          | 0 | 1 ->
            let keep = k in
            let v = newest () + 1 in
            ignore (Fsd.create fs ~name:"vfile" ~keep (content (Rng.int rng 600) v));
            versions := !versions @ [ v ];
            if keep > 0 then versions := List.filter (fun x -> x > v - keep) !versions
          | 2 ->
            if !versions <> [] then begin
              Fsd.delete fs ~name:"vfile";
              let n = newest () in
              versions := List.filter (fun x -> x <> n) !versions
            end
          | _ -> ignore (Fsd.exists fs ~name:"vfile"))
        ops;
      Fsd.versions fs ~name:"vfile" = !versions)

(* Property: random operation sequence with random crash points; after
   recovery the file system matches the model of committed operations.

   The model must be commit-AWARE, not commit-driven: the FSD runs its
   own group-commit demon (time-based once the commit interval elapses,
   bulk-triggered when enough pages accumulate), so mutations become
   durable between the script's explicit op-4 forces. Each pending model
   entry therefore carries the `Fsd.mutation_seq` it corresponds to, and
   after every step entries covered by `Fsd.durable_seq` migrate to the
   committed map. An earlier version of this property applied pending
   entries only on explicit forces and flaked whenever a hidden commit
   fired before a crash (seed 40; see test_crash_hidden_commit_model
   below for the minimised script). *)
let crash_consistency_run seed script =
  let geom = Geometry.tiny_test in
  let clock = Simclock.create () in
  let device = Device.create ~clock geom in
  let params = Params.for_geometry geom in
  Fsd.format device params;
  let fs = ref (fst (Fsd.boot device)) in
  let rng = Rng.create (seed + 1) in
  (* model: name -> content of committed state; pending: not-yet-durable
     entries tagged with the mutation_seq that makes them durable *)
  let committed : (string, bytes) Hashtbl.t = Hashtbl.create 16 in
  let pending = ref [] in
  let hidden_commits = ref 0 in
  let sync_durable ~explicit =
    let d = Fsd.durable_seq !fs in
    let durable, still = List.partition (fun (s, _, _) -> s <= d) !pending in
    List.iter
      (fun (_, name, data) ->
        match data with
        | Some d -> Hashtbl.replace committed name d
        | None -> Hashtbl.remove committed name)
      (List.rev durable);
    pending := still;
    if (not explicit) && durable <> [] then incr hidden_commits
  in
  let names = [| "a"; "b"; "c"; "d"; "e" |] in
  (try
     List.iter
       (fun (op, which) ->
         let name = names.(which mod Array.length names) in
         (match op with
         | 0 | 1 | 2 ->
           let data = content (Rng.int rng 1500) (Rng.int rng 100) in
           ignore (Fsd.create !fs ~name ~keep:1 data);
           pending := (Fsd.mutation_seq !fs, name, Some data) :: !pending
         | 3 ->
           if Fsd.exists !fs ~name then begin
             (* keep=1: deleting removes the only version *)
             Fsd.delete !fs ~name;
             pending := (Fsd.mutation_seq !fs, name, None) :: !pending
           end
         | 4 -> Fsd.force !fs
         | 5 ->
           (* crash now: not-yet-durable ops lost *)
           pending := [];
           fs := fst (Fsd.boot device)
         | _ -> Fsd.tick !fs ~us:40_000);
         sync_durable ~explicit:(op = 4))
       script
   with Fs_error.Fs_error Fs_error.Volume_full -> ());
  (* Final force + recovery. *)
  Fsd.force !fs;
  sync_durable ~explicit:true;
  let fs2, _ = Fsd.boot device in
  let ok_contents =
    Hashtbl.fold
      (fun name data acc ->
        acc && Bytes.equal data (Fsd.read_all fs2 ~name))
      committed true
  in
  (ok_contents && Fsd.check fs2 = Ok (), !hidden_commits)

let prop_crash_consistency =
  QCheck.Test.make ~name:"crash consistency: committed ops survive, FS stays valid"
    ~count:25
    QCheck.(pair small_int (small_list (pair (int_bound 6) (int_bound 4))))
    (fun (seed, script) -> fst (crash_consistency_run seed script))

(* Regression: the minimised seed-40 flake from ROADMAP.md (delta-debugged
   43 -> 20 steps). The ticks push the clock past the commit interval, so
   the FSD's own time demon commits the second "d" create mid-script; the
   crash at the end then exposed the old model's stale idea of "d". The
   run must pass under the commit-aware model AND actually exercise a
   hidden (non-explicit-force) commit — otherwise the script no longer
   reproduces the scenario it pins. *)
let test_crash_hidden_commit_model () =
  let script =
    [ (2, 3); (4, 4); (6, 1); (6, 0); (6, 0); (2, 4); (6, 3); (6, 4);
      (1, 2); (2, 3); (3, 1); (6, 1); (2, 2); (0, 2); (3, 2); (0, 2);
      (0, 2); (2, 0); (1, 0); (5, 0) ]
  in
  let ok, hidden = crash_consistency_run 40 script in
  check bool "minimised seed-40 script passes with commit-aware model" true ok;
  check bool "script still triggers a hidden commit" true (hidden > 0)

let suite =
  [
    ("create/read roundtrip", `Quick, test_create_read_roundtrip);
    ("empty file", `Quick, test_empty_file);
    ("read page", `Quick, test_read_page);
    ("missing file errors", `Quick, test_missing_file_errors);
    ("versions and keep", `Quick, test_versions_and_keep);
    ("delete", `Quick, test_delete);
    ("list", `Quick, test_list);
    ("extend/contract", `Quick, test_extend_contract);
    ("empty create then extend", `Quick, test_empty_then_extend);
    ("contract to zero then extend", `Quick, test_contract_to_zero_then_extend);
    ("set_keep trims versions", `Quick, test_set_keep_trims);
    ("symlink", `Quick, test_symlink);
    ("cached last-used", `Quick, test_cached_last_used);
    ("rename", `Quick, test_rename);
    ("rename does no io", `Quick, test_rename_no_io);
    ("copy", `Quick, test_copy);
    ("inspect report", `Quick, test_inspect_report);
    ("clean shutdown + reboot", `Quick, test_clean_shutdown_reboot);
    ("ops after shutdown rejected", `Quick, test_ops_after_shutdown_rejected);
    ("crash: committed survives", `Quick, test_crash_committed_survives);
    ("crash: uncommitted lost cleanly", `Quick, test_crash_uncommitted_lost_cleanly);
    ("crash: uncommitted delete keeps file", `Quick, test_crash_uncommitted_delete_keeps_file);
    ("crash: committed delete stays deleted", `Quick, test_crash_committed_delete_stays_deleted);
    ("crash: hidden commit vs model (seed-40 regression)", `Quick, test_crash_hidden_commit_model);
    ("group commit interval", `Quick, test_group_commit_interval);
    ("torn group commit", `Quick, test_torn_group_commit);
    ("repeated crashes", `Quick, test_repeated_crashes);
    ("FNT copy damage repaired", `Quick, test_fnt_copy_damage_repaired);
    ("boot page replica", `Quick, test_boot_page_replica);
    ("data damage isolated", `Quick, test_data_damage_isolated_to_file);
    ("leader detects wild write", `Quick, test_leader_detects_wild_write);
    ("create = one synchronous io", `Quick, test_create_is_one_synchronous_io);
    ("open does no io", `Quick, test_open_does_no_io);
    ("delete does no io", `Quick, test_delete_does_no_io);
    ("list does no io when cached", `Quick, test_list_does_no_io_when_cached);
    ("group commit batches creates", `Quick, test_group_commit_batches_many_creates);
    ("empty create leader via log", `Quick, test_empty_create_leader_goes_through_log);
    ("vam reconstruction equals tracked", `Quick, test_vam_reconstruction_equals_tracked);
    ("idle vam save spoiled by mutation", `Quick, test_save_vam_idle_then_mutate);
    ("idle vam save trusted when quiet", `Quick, test_save_vam_idle_no_mutation_trusted);
    QCheck_alcotest.to_alcotest prop_version_semantics;
    QCheck_alcotest.to_alcotest prop_crash_consistency;
  ]
