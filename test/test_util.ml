open Cedar_util

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

(* ------------------------------------------------------------------ *)
(* Bytebuf                                                             *)

let test_bytebuf_roundtrip () =
  let w = Bytebuf.Writer.create () in
  Bytebuf.Writer.u8 w 0xab;
  Bytebuf.Writer.u16 w 0xbeef;
  Bytebuf.Writer.u32 w 0xdeadbeef;
  Bytebuf.Writer.u64 w 0x1122334455667788L;
  Bytebuf.Writer.i64 w (-42);
  Bytebuf.Writer.bool w true;
  Bytebuf.Writer.string w "hello";
  Bytebuf.Writer.bytes w (Bytes.of_string "\x00\x01\x02");
  Bytebuf.Writer.fixed_string w ~width:8 "abc";
  Bytebuf.Writer.list w Bytebuf.Writer.u16 [ 1; 2; 3 ];
  let r = Bytebuf.Reader.of_bytes (Bytebuf.Writer.contents w) in
  check int "u8" 0xab (Bytebuf.Reader.u8 r);
  check int "u16" 0xbeef (Bytebuf.Reader.u16 r);
  check int "u32" 0xdeadbeef (Bytebuf.Reader.u32 r);
  Alcotest.(check int64) "u64" 0x1122334455667788L (Bytebuf.Reader.u64 r);
  check int "i64" (-42) (Bytebuf.Reader.i64 r);
  check bool "bool" true (Bytebuf.Reader.bool r);
  check Alcotest.string "string" "hello" (Bytebuf.Reader.string r);
  check Alcotest.string "bytes" "\x00\x01\x02"
    (Bytes.to_string (Bytebuf.Reader.bytes r));
  check Alcotest.string "fixed" "abc" (Bytebuf.Reader.fixed_string r ~width:8);
  check (Alcotest.list int) "list" [ 1; 2; 3 ]
    (Bytebuf.Reader.list r Bytebuf.Reader.u16);
  check int "consumed all" 0 (Bytebuf.Reader.remaining r)

let test_bytebuf_truncated () =
  let r = Bytebuf.Reader.of_bytes (Bytes.of_string "\x01") in
  Alcotest.check_raises "u32 on 1 byte"
    (Bytebuf.Decode_error "truncated input (need 4 at 0, limit 1)") (fun () ->
      ignore (Bytebuf.Reader.u32 r))

let test_bytebuf_sector_pad () =
  let w = Bytebuf.Writer.create () in
  Bytebuf.Writer.u32 w 7;
  let s = Bytebuf.Writer.to_sector w ~size:512 in
  check int "padded" 512 (Bytes.length s);
  check int "tail zero" 0 (Char.code (Bytes.get s 511))

let test_bytebuf_bad_bool () =
  let r = Bytebuf.Reader.of_bytes (Bytes.of_string "\x07") in
  Alcotest.check_raises "bad bool" (Bytebuf.Decode_error "invalid boolean byte 7")
    (fun () -> ignore (Bytebuf.Reader.bool r))

(* ------------------------------------------------------------------ *)
(* Crc32                                                               *)

let test_crc32_known () =
  (* Standard test vector: CRC-32("123456789") = 0xcbf43926. *)
  check int "vector" 0xcbf43926 (Crc32.string "123456789");
  check int "empty" 0 (Crc32.string "")

let test_crc32_slice () =
  let b = Bytes.of_string "xx123456789yy" in
  check int "slice" 0xcbf43926 (Crc32.bytes ~pos:2 ~len:9 b)

(* ------------------------------------------------------------------ *)
(* Bitmap                                                              *)

let test_bitmap_basic () =
  let b = Bitmap.create 100 in
  check int "empty count" 0 (Bitmap.count b);
  Bitmap.set b 0;
  Bitmap.set b 63;
  Bitmap.set b 99;
  check bool "get 0" true (Bitmap.get b 0);
  check bool "get 1" false (Bitmap.get b 1);
  check int "count" 3 (Bitmap.count b);
  Bitmap.clear b 63;
  check bool "cleared" false (Bitmap.get b 63);
  check int "count after clear" 2 (Bitmap.count b)

let test_bitmap_runs () =
  let b = Bitmap.create 64 in
  Bitmap.set_run b ~pos:10 ~len:20;
  check bool "run set" true (Bitmap.all_set_in_run b ~pos:10 ~len:20);
  check bool "beyond run" false (Bitmap.all_set_in_run b ~pos:10 ~len:21);
  check (Alcotest.option int) "find up" (Some 10)
    (Bitmap.find_run_set b ~from:0 ~upto:64 ~len:5);
  check (Alcotest.option int) "find exact" (Some 10)
    (Bitmap.find_run_set b ~from:0 ~upto:64 ~len:20);
  check (Alcotest.option int) "find too long" None
    (Bitmap.find_run_set b ~from:0 ~upto:64 ~len:21);
  check (Alcotest.option int) "find down" (Some 25)
    (Bitmap.find_run_set_down b ~from:63 ~downto_:0 ~len:5);
  Bitmap.clear_run b ~pos:10 ~len:20;
  check int "cleared all" 0 (Bitmap.count b)

let test_bitmap_bytes_roundtrip () =
  let b = Bitmap.create 37 in
  Bitmap.set b 0;
  Bitmap.set b 36;
  Bitmap.set b 17;
  let b' = Bitmap.of_bytes ~bits:37 (Bitmap.to_bytes b) in
  check bool "equal" true (Bitmap.equal b b')

let test_bitmap_union () =
  let a = Bitmap.create 16 and b = Bitmap.create 16 in
  Bitmap.set a 1;
  Bitmap.set b 2;
  Bitmap.union_into ~dst:a ~src:b;
  check bool "1" true (Bitmap.get a 1);
  check bool "2" true (Bitmap.get a 2);
  check int "count" 2 (Bitmap.count a)

let prop_bitmap_vs_reference =
  QCheck.Test.make ~name:"bitmap matches reference set semantics" ~count:200
    QCheck.(list (pair (int_bound 199) bool))
    (fun ops ->
      let bm = Bitmap.create 200 in
      let reference = Hashtbl.create 16 in
      List.iter
        (fun (i, v) ->
          Bitmap.assign bm i v;
          if v then Hashtbl.replace reference i () else Hashtbl.remove reference i)
        ops;
      Hashtbl.length reference = Bitmap.count bm
      && List.for_all (fun (i, _) -> Bitmap.get bm i = Hashtbl.mem reference i) ops)

(* ------------------------------------------------------------------ *)
(* Lru                                                                 *)

let test_lru_eviction_order () =
  let c = Lru.create ~capacity:2 in
  ignore (Lru.add c 1 "a");
  ignore (Lru.add c 2 "b");
  ignore (Lru.find c 1); (* promote 1; 2 is now LRU *)
  let evicted = Lru.add c 3 "c" in
  check (Alcotest.list (Alcotest.pair int Alcotest.string)) "evicted LRU"
    [ (2, "b") ] evicted;
  check bool "1 kept" true (Lru.mem c 1);
  check bool "3 kept" true (Lru.mem c 3)

let test_lru_pinned_never_evicted () =
  let c = Lru.create ~capacity:2 in
  ignore (Lru.add c 1 "a");
  Lru.pin c 1;
  ignore (Lru.add c 2 "b");
  ignore (Lru.add c 3 "c");
  ignore (Lru.add c 4 "d");
  check bool "pinned survives" true (Lru.mem c 1);
  Lru.unpin c 1;
  ignore (Lru.add c 5 "e");
  check int "capacity respected after unpin" 2 (Lru.size c)

let test_lru_replace () =
  let c = Lru.create ~capacity:2 in
  ignore (Lru.add c 1 "a");
  ignore (Lru.add c 1 "a2");
  check (Alcotest.option Alcotest.string) "replaced" (Some "a2") (Lru.find c 1);
  check int "size 1" 1 (Lru.size c)

(* ------------------------------------------------------------------ *)
(* Rng                                                                 *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check int "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_bounds () =
  let r = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int_in r ~lo:5 ~hi:10 in
    check bool "in range" true (v >= 5 && v <= 10)
  done

let test_rng_split_independent () =
  let a = Rng.create 1 in
  let b = Rng.split a in
  let xs = List.init 10 (fun _ -> Rng.int a 1_000_000) in
  let ys = List.init 10 (fun _ -> Rng.int b 1_000_000) in
  check bool "streams differ" true (xs <> ys)

(* ------------------------------------------------------------------ *)
(* Simclock, Stats                                                     *)

let test_simclock () =
  let c = Simclock.create () in
  check int "starts at 0" 0 (Simclock.now c);
  Simclock.advance c 500;
  check int "advanced" 500 (Simclock.now c);
  Simclock.advance_to c 400;
  check int "no going back" 500 (Simclock.now c);
  Simclock.advance_to c 600;
  check int "forward" 600 (Simclock.now c)

let test_stats () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 1.0; 2.0; 3.0; 4.0 ];
  check int "n" 4 (Stats.n s);
  check (Alcotest.float 1e-9) "mean" 2.5 (Stats.mean s);
  check (Alcotest.float 1e-9) "min" 1.0 (Stats.min s);
  check (Alcotest.float 1e-9) "max" 4.0 (Stats.max s);
  check (Alcotest.float 1e-9) "p50" 2.0 (Stats.percentile s 0.5);
  check (Alcotest.float 1e-9) "p100" 4.0 (Stats.percentile s 1.0)

let test_percentile_edges () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 5.0; 1.0; 3.0 ];
  check (Alcotest.float 1e-9) "p0 is the minimum" 1.0 (Stats.percentile s 0.0);
  check (Alcotest.float 1e-9) "below 0 clamps to min" 1.0 (Stats.percentile s (-0.7));
  check (Alcotest.float 1e-9) "above 1 clamps to max" 5.0 (Stats.percentile s 2.5);
  check bool "empty series still raises" true
    (match Stats.percentile (Stats.create ()) 0.5 with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_histogram () =
  let h = Stats.Histogram.create ~bucket_width:10 in
  List.iter (Stats.Histogram.add h) [ 1; 5; 11; 25; 27 ];
  check
    (Alcotest.list (Alcotest.pair int int))
    "buckets"
    [ (0, 2); (10, 1); (20, 2) ]
    (Stats.Histogram.buckets h)

let suite =
  [
    ("bytebuf roundtrip", `Quick, test_bytebuf_roundtrip);
    ("bytebuf truncated", `Quick, test_bytebuf_truncated);
    ("bytebuf sector pad", `Quick, test_bytebuf_sector_pad);
    ("bytebuf bad bool", `Quick, test_bytebuf_bad_bool);
    ("crc32 known vector", `Quick, test_crc32_known);
    ("crc32 slice", `Quick, test_crc32_slice);
    ("bitmap basic", `Quick, test_bitmap_basic);
    ("bitmap runs", `Quick, test_bitmap_runs);
    ("bitmap bytes roundtrip", `Quick, test_bitmap_bytes_roundtrip);
    ("bitmap union", `Quick, test_bitmap_union);
    QCheck_alcotest.to_alcotest prop_bitmap_vs_reference;
    ("lru eviction order", `Quick, test_lru_eviction_order);
    ("lru pinned never evicted", `Quick, test_lru_pinned_never_evicted);
    ("lru replace", `Quick, test_lru_replace);
    ("rng deterministic", `Quick, test_rng_deterministic);
    ("rng bounds", `Quick, test_rng_bounds);
    ("rng split independent", `Quick, test_rng_split_independent);
    ("simclock", `Quick, test_simclock);
    ("stats", `Quick, test_stats);
    ("percentile edges", `Quick, test_percentile_edges);
    ("histogram", `Quick, test_histogram);
  ]
