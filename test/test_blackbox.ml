(* Black-box flight recorder, trace profiler and Chrome export: the
   checkpoint/decode path, torn-write fallback, crash forensics, and the
   hand-checked profile/percentile numbers (ISSUE 3). *)

open Cedar_util
open Cedar_disk
open Cedar_fsbase
open Cedar_fsd
module Obs = Cedar_obs
module Trace = Cedar_obs.Trace
module Script = Cedar_workload.Obs_script

let check = Alcotest.check
let int = Alcotest.int
let string = Alcotest.string
let bool = Alcotest.bool

let fresh_volume ?(geom = Geometry.small_test) () =
  let clock = Simclock.create () in
  let device = Device.create ~clock geom in
  Fsd.format device (Params.for_geometry geom);
  device

(* ------------------------------------------------------------------ *)
(* Event codec                                                          *)

let sample_events =
  [
    Trace.Dev_read { dev = 0; sector = 17; count = 4; us = 12_000 };
    Trace.Dev_write { dev = 3; sector = 293_617; count = 21; us = 50_658 };
    Trace.Dev_seek { dev = 255; cylinders = 406; us = 40_082 };
    Trace.Log_append
      {
        record_no = 1_000_001L;
        units = 2;
        data_sectors = 8;
        total_sectors = 21;
        third = 1;
      };
    Trace.Log_force { units = 2; empty = false };
    Trace.Fnt_write_twice { page = 5 };
    Trace.Leader_piggyback { sector = 4_242 };
    Trace.Vam_rebuild { source = "log"; us = 77 };
    Trace.Scrub_repair { target = "leader"; loc = 9 };
    Trace.Scavenge_phase { phase = "sweep"; us = 123 };
    Trace.Recovery_phase { phase = "analysis"; us = 456 };
    Trace.Op_begin { op = "create"; name = "a/b" };
    Trace.Op_end { op = "create"; us = 17_364 };
    Trace.Blackbox_checkpoint { gen = 3L; events = 64; sectors = 16 };
  ]

let entry_eq (a : Trace.entry) (b : Trace.entry) =
  a.Trace.seq = b.Trace.seq
  && a.Trace.span = b.Trace.span
  && a.Trace.at_us = b.Trace.at_us
  && a.Trace.event = b.Trace.event

let test_codec_roundtrip () =
  List.iteri
    (fun i ev ->
      let e =
        { Trace.seq = 100 + i; span = i; at_us = 1_000 * i; event = ev }
      in
      let w = Bytebuf.Writer.create () in
      Trace.encode_entry w e;
      let r = Bytebuf.Reader.of_bytes (Bytebuf.Writer.contents w) in
      let e' = Trace.decode_entry r in
      check bool
        (Format.asprintf "entry %d roundtrips (%a)" i Trace.pp_event ev)
        true (entry_eq e e'))
    sample_events

(* ------------------------------------------------------------------ *)
(* Checkpoint write/read and shutdown                                    *)

let test_shutdown_checkpoint () =
  let device = fresh_volume () in
  Obs.Trace.enable (Device.trace device);
  let fs = fst (Fsd.boot device) in
  let ops = Fsd.ops fs in
  for i = 0 to 19 do
    ignore
      (ops.Fs_ops.create
         ~name:(Printf.sprintf "bb/f%02d" i)
         ~data:(Bytes.make 700 'x')
        : Fs_ops.info)
  done;
  ops.Fs_ops.force ();
  Fsd.shutdown fs;
  match Blackbox.read device (Fsd.layout fs) with
  | Error m -> Alcotest.failf "blackbox read failed: %s" m
  | Ok cp ->
    check string "last checkpoint is the shutdown one" "shutdown"
      cp.Blackbox.state.Blackbox.reason;
    check int "boot 1" 1 cp.Blackbox.state.Blackbox.boot_count;
    check bool "at least 64 events survived" true
      (List.length cp.Blackbox.events >= 64);
    check bool "no op in flight at clean shutdown" true
      (cp.Blackbox.in_flight = []);
    (* Events come back oldest first with increasing sequence numbers. *)
    let seqs = List.map (fun e -> e.Trace.seq) cp.Blackbox.events in
    check bool "events sorted oldest-first" true (List.sort compare seqs = seqs)

(* A crash mid-workload: with a zero-length commit interval every
   operation forces (and therefore checkpoints) while its own span is
   still open, so the black box names the operation that was in flight
   when the machine died. *)
let test_crash_names_in_flight_op () =
  let geom = Geometry.small_test in
  let clock = Simclock.create () in
  let device = Device.create ~clock geom in
  let params = { (Params.for_geometry geom) with Params.commit_interval_us = 1 } in
  Fsd.format device params;
  Obs.Trace.enable (Device.trace device);
  let fs = fst (Fsd.boot ~params device) in
  let ops = Fsd.ops fs in
  for i = 0 to 24 do
    ignore
      (ops.Fs_ops.create
         ~name:(Printf.sprintf "bb/f%02d" i)
         ~data:(Bytes.make 700 'x')
        : Fs_ops.info)
  done;
  (* No shutdown: the device simply stops here, as in a crash. *)
  match Blackbox.read device (Fsd.layout fs) with
  | Error m -> Alcotest.failf "blackbox read failed: %s" m
  | Ok cp ->
    check string "died during a force" "force" cp.Blackbox.state.Blackbox.reason;
    check bool "at least 64 events reconstructed" true
      (List.length cp.Blackbox.events >= 64);
    let names = List.map (fun (op, name, _) -> (op, name)) cp.Blackbox.in_flight in
    check bool "the interrupted create is named" true
      (List.mem ("create", "bb/f24") names)

(* ------------------------------------------------------------------ *)
(* Torn checkpoint                                                      *)

let test_torn_checkpoint_falls_back () =
  let device = fresh_volume () in
  Obs.Trace.enable (Device.trace device);
  let fs = fst (Fsd.boot device) in
  let ops = Fsd.ops fs in
  let layout = Fsd.layout fs in
  let create i =
    ignore
      (ops.Fs_ops.create
         ~name:(Printf.sprintf "torn/f%02d" i)
         ~data:(Bytes.make 700 'x')
        : Fs_ops.info)
  in
  (* Two full force cycles: gen 1 into slot 0, gen 2 into slot 1. *)
  create 0;
  ops.Fs_ops.force ();
  create 1;
  ops.Fs_ops.force ();
  (* Arm a crash that tears the NEXT black-box slot write (gen 3 back
     into slot 0): the observer fires before the sectors are stored, so
     the write that touches the region crashes after 4 of its 16
     sectors. The header (gen 3) lands; the payload is left as stale
     gen-1 bytes — readable, but failing the header's payload CRC. *)
  let in_blackbox sector =
    sector >= layout.Layout.blackbox_start
    && sector < layout.Layout.blackbox_start + layout.Layout.blackbox_sectors
  in
  Device.set_observer device
    (Some
       (fun ~rw ~sector ~count:_ ->
         if rw = `W && in_blackbox sector then
           Device.plan_write_crash device ~after_sectors:4 ~damage_tail:0));
  create 2;
  (match ops.Fs_ops.force () with
  | () -> Alcotest.fail "expected the armed crash during the checkpoint"
  | exception Device.Crash_during_write _ -> ());
  Device.set_observer device None;
  Device.cancel_write_crash device;
  (* The torn gen-3 slot fails its payload CRC; read falls back to the
     last complete checkpoint, generation 2. *)
  (match Blackbox.read device layout with
  | Error m -> Alcotest.failf "expected fallback checkpoint, got: %s" m
  | Ok cp ->
    check int "previous generation decoded" 2
      (Int64.to_int cp.Blackbox.state.Blackbox.gen);
    check int "from the untorn slot" 1 cp.Blackbox.slot);
  (* The torn header still bumps the generation (never reuse gen 3), and
     the next checkpoint overwrites the torn slot, not the good one. *)
  let next_gen, next_slot = Blackbox.probe device layout in
  check int "next generation skips the torn one" 4 (Int64.to_int next_gen);
  check int "next slot is the torn slot" 0 next_slot

(* Satellite sweep (ISSUE 5): tear the checkpoint slot write at EVERY
   sector offset, in every tear mode (prefix-only, zeroed, garbage,
   damaged-unreadable). Whatever is left behind, the region must decode
   to a valid generation — the freshly torn one if its meaningful bytes
   all landed, else the older slot's — probe must never reuse a torn
   generation's slot for the good checkpoint, and boot must come back
   clean without so much as a scavenge. *)
let test_torn_checkpoint_every_offset_and_mode () =
  let tears =
    [
      ("none", Device.Tear_none);
      ("zero", Device.Tear_zero);
      ("garbage", Device.Tear_garbage);
      ("damage", Device.Tear_damage 1);
    ]
  in
  let slot_sectors =
    (Layout.compute Geometry.small_test (Params.for_geometry Geometry.small_test))
      .Layout.blackbox_slot_sectors
  in
  List.iter
    (fun (tname, tear) ->
      for offset = 0 to slot_sectors - 1 do
        let ctx = Printf.sprintf "tear=%s offset=%d" tname offset in
        let device = fresh_volume () in
        Obs.Trace.enable (Device.trace device);
        let fs = fst (Fsd.boot device) in
        let ops = Fsd.ops fs in
        let layout = Fsd.layout fs in
        let create i =
          ignore
            (ops.Fs_ops.create
               ~name:(Printf.sprintf "torn/f%02d" i)
               ~data:(Bytes.make 700 'x')
              : Fs_ops.info)
        in
        (* Gen 1 into slot 0, gen 2 into slot 1; then tear gen 3's write
           (back into slot 0) at [offset] sectors. *)
        create 0;
        ops.Fs_ops.force ();
        create 1;
        ops.Fs_ops.force ();
        let in_blackbox sector =
          sector >= layout.Layout.blackbox_start
          && sector < layout.Layout.blackbox_start + layout.Layout.blackbox_sectors
        in
        Device.set_observer device
          (Some
             (fun ~rw ~sector ~count:_ ->
               if rw = `W && in_blackbox sector then
                 Device.plan_write_crash_tear device ~after_sectors:offset ~tear));
        create 2;
        (match ops.Fs_ops.force () with
        | () -> Alcotest.failf "%s: armed crash never fired" ctx
        | exception Device.Crash_during_write _ -> ());
        Device.set_observer device None;
        Device.cancel_write_crash device;
        (* Decode: the region always yields a checkpoint. A tear past the
           meaningful bytes leaves gen 3 whole (padding only was lost);
           any earlier tear fails a CRC (or reads as damage) and falls
           back to gen 2 in slot 1. *)
        let decoded =
          match Blackbox.read device layout with
          | Error m -> Alcotest.failf "%s: no valid checkpoint left: %s" ctx m
          | Ok cp ->
            let g = Int64.to_int cp.Blackbox.state.Blackbox.gen in
            check bool (ctx ^ ": decodes to gen 2 or 3") true (g = 2 || g = 3);
            if g = 2 then
              check int (ctx ^ ": fallback comes from the untorn slot") 1
                cp.Blackbox.slot;
            (g, cp.Blackbox.slot)
        in
        (* Probe never hands out a generation that may already be on disk
           (a torn gen-3 header still burns gen 3; one that never landed
           may be reissued), and never aims the next write at the good
           slot. *)
        let next_gen, next_slot = Blackbox.probe device layout in
        check bool (ctx ^ ": next gen is fresh") true
          (Int64.to_int next_gen > fst decoded);
        check bool (ctx ^ ": next slot is not the good one") true
          (next_slot <> snd decoded);
        (* Boot never aborts on a torn (even unreadable) black box. *)
        (match Fsd.try_boot device with
        | `Needs_scavenge reason ->
          Alcotest.failf "%s: boot fell to scavenge: %s" ctx reason
        | `Ok (fs2, _) ->
          check bool (ctx ^ ": committed file survives") true
            (Fsd.exists fs2 ~name:"torn/f00");
          check bool (ctx ^ ": second committed file survives") true
            (Fsd.exists fs2 ~name:"torn/f01");
          (* The next checkpoint lands in the torn slot and decodes,
             repairing even a damaged sector by overwriting it. *)
          ignore
            ((Fsd.ops fs2).Fs_ops.create ~name:"torn/post" ~data:(Bytes.make 640 'y')
              : Fs_ops.info);
          (Fsd.ops fs2).Fs_ops.force ();
          (match Blackbox.read device layout with
          | Error m -> Alcotest.failf "%s: post-boot checkpoint unreadable: %s" ctx m
          | Ok cp ->
            check bool (ctx ^ ": post-boot generation advanced") true
              (cp.Blackbox.state.Blackbox.gen >= next_gen)))
      done)
    tears

(* ------------------------------------------------------------------ *)
(* Profiler                                                             *)

(* The scripted workload is 10 creates, force, then 10 opens + 10 reads
   + 1 list + 10 deletes, force: the two ops-per-force samples must be
   exactly 10 and 31, and there is one force-to-force interval. *)
let test_profile_hand_check () =
  let device = fresh_volume () in
  let fs = fst (Fsd.boot device) in
  let ops = Fsd.ops fs in
  Script.warmup ops;
  let tr = Device.trace device in
  Obs.Trace.enable tr;
  Script.scripted ops;
  Obs.Trace.disable tr;
  let p = Obs.Profile.of_entries (Obs.Trace.to_list tr) in
  check int "two forces" 2 p.Obs.Profile.forces;
  check int "no empty forces" 0 p.Obs.Profile.empty_forces;
  check int "one checkpoint per force" 2 p.Obs.Profile.blackbox_checkpoints;
  let opf = p.Obs.Profile.ops_per_force in
  check int "two ops-per-force samples" 2 (Stats.n opf);
  check int "first burst: 10 creates" 10 (int_of_float (Stats.min opf));
  check int "second burst: 31 ops" 31 (int_of_float (Stats.max opf));
  check (Alcotest.float 0.001) "mean ops per force" 20.5 (Stats.mean opf);
  check int "one force interval" 1 (Stats.n p.Obs.Profile.force_interval_us);
  let latency op = List.assoc op p.Obs.Profile.op_latency in
  check int "10 create latencies" 10 (Stats.n (latency "create"));
  check int "10 open latencies" 10 (Stats.n (latency "open"));
  check int "10 delete latencies" 10 (Stats.n (latency "delete"));
  check int "1 list latency" 1 (Stats.n (latency "list"));
  (* Force latency is profiled, but forces are not counted in the
     ops-per-force samples (10 and 31 above already prove that). *)
  check int "2 force latencies" 2 (Stats.n (latency "force"));
  (* The log-third timeline has one point per traced append, all in the
     same third with growing occupancy. *)
  check int "two appends traced" 2 (List.length p.Obs.Profile.third_timeline);
  match p.Obs.Profile.third_timeline with
  | [ (_, t1, o1); (_, t2, o2) ] ->
    check int "same third" t1 t2;
    check bool "occupancy grows" true (o2 > o1)
  | _ -> Alcotest.fail "unexpected timeline shape"

(* ------------------------------------------------------------------ *)
(* Chrome export                                                        *)

let test_chrome_export () =
  let device = fresh_volume () in
  Obs.Trace.enable (Device.trace device);
  let fs = fst (Fsd.boot device) in
  let ops = Fsd.ops fs in
  Script.warmup ops;
  Script.scripted ops;
  let entries = Obs.Trace.to_list (Device.trace device) in
  let json = Obs.Export.chrome entries in
  let events =
    match json with
    | Obs.Jsonb.Obj fields -> (
      match List.assoc "traceEvents" fields with
      | Obs.Jsonb.Arr evs -> evs
      | _ -> Alcotest.fail "traceEvents is not an array")
    | _ -> Alcotest.fail "chrome export is not an object"
  in
  check bool "trace has events" true (events <> []);
  let completes = ref 0 in
  List.iter
    (fun ev ->
      match ev with
      | Obs.Jsonb.Obj fields -> (
        match List.assoc "ph" fields with
        | Obs.Jsonb.Str "X" ->
          incr completes;
          (* Complete events carry both a timestamp and a duration, so
             begins and ends are balanced by construction. *)
          let num k =
            match List.assoc k fields with
            | Obs.Jsonb.Int n -> n
            | Obs.Jsonb.Float f -> int_of_float f
            | _ -> Alcotest.failf "%s is not numeric" k
          in
          check bool "ts >= 0" true (num "ts" >= 0);
          check bool "dur >= 0" true (num "dur" >= 0)
        | Obs.Jsonb.Str "i" | Obs.Jsonb.Str "M" -> ()
        | Obs.Jsonb.Str ph -> Alcotest.failf "unbalanced phase %S emitted" ph
        | _ -> Alcotest.fail "ph is not a string")
      | _ -> Alcotest.fail "trace event is not an object")
    events;
  (* Every closed span becomes exactly one complete slice on the op
     track; device transfers are complete slices too. *)
  let ends =
    List.length
      (List.filter
         (fun e ->
           match e.Trace.event with Trace.Op_end _ -> true | _ -> false)
         entries)
  in
  check bool "at least one X slice per closed span" true (!completes >= ends);
  (* The serialized form is non-trivial valid JSON as far as the builder
     is concerned: it renders and starts an object. *)
  let s = Obs.Jsonb.to_string json in
  check bool "serialises to an object" true (String.length s > 2 && s.[0] = '{')

(* ------------------------------------------------------------------ *)
(* Metrics percentiles                                                  *)

let test_metrics_percentiles () =
  let m = Obs.Metrics.create () in
  let d = Obs.Metrics.dist m "t.latency" in
  for v = 1 to 100 do
    Stats.add d (float_of_int v)
  done;
  match List.assoc "t.latency" (Obs.Metrics.snapshot m) with
  | Obs.Metrics.Dist { n; p50; p90; p99; _ } ->
    check (Alcotest.float 0.001) "p50" 50.0 p50;
    check (Alcotest.float 0.001) "p90" 90.0 p90;
    check (Alcotest.float 0.001) "p99" 99.0 p99;
    check int "n" 100 n
  | Obs.Metrics.Int _ -> Alcotest.fail "expected a distribution"

(* ------------------------------------------------------------------ *)
(* Checkpoint cadence (Params.blackbox_every_n_forces)                  *)

(* Count checkpoints by the generation the on-disk black box reaches
   after [forces] traced non-empty forces (no shutdown). *)
let gen_after_forces ~cadence ~forces =
  let geom = Geometry.small_test in
  let clock = Simclock.create () in
  let device = Device.create ~clock geom in
  let params =
    { (Params.for_geometry geom) with Params.blackbox_every_n_forces = cadence }
  in
  Fsd.format device params;
  Obs.Trace.enable (Device.trace device);
  let fs = fst (Fsd.boot ~params device) in
  for i = 1 to forces do
    ignore
      (Fsd.create fs
         ~name:(Printf.sprintf "cad/f%02d" i)
         (Bytes.make 600 'c')
        : Fs_ops.info);
    Fsd.force fs
  done;
  match Blackbox.read device (Fsd.layout fs) with
  | Ok cp -> Int64.to_int cp.Blackbox.state.Blackbox.gen
  | Error m -> Alcotest.failf "blackbox unreadable: %s" m

let test_checkpoint_cadence () =
  (* Default cadence 1: one checkpoint per non-empty force. *)
  check int "cadence 1: checkpoint every force" 6
    (gen_after_forces ~cadence:1 ~forces:6);
  (* Cadence 3: only every third non-empty force checkpoints. *)
  check int "cadence 3: every third force" 2
    (gen_after_forces ~cadence:3 ~forces:6)

let test_shutdown_checkpoints_despite_cadence () =
  (* A cadence larger than the run: no force ever checkpoints, but the
     shutdown checkpoint is unconditional, so the flight recorder is
     never left empty. *)
  let geom = Geometry.small_test in
  let clock = Simclock.create () in
  let device = Device.create ~clock geom in
  let params =
    { (Params.for_geometry geom) with Params.blackbox_every_n_forces = 100 }
  in
  Fsd.format device params;
  Obs.Trace.enable (Device.trace device);
  let fs = fst (Fsd.boot ~params device) in
  ignore (Fsd.create fs ~name:"cad/only" (Bytes.make 600 'c') : Fs_ops.info);
  Fsd.force fs;
  let layout = Fsd.layout fs in
  (match Blackbox.read device layout with
  | Ok cp -> Alcotest.failf "unexpected checkpoint gen %Ld before shutdown"
               cp.Blackbox.state.Blackbox.gen
  | Error _ -> ());
  Fsd.shutdown fs;
  match Blackbox.read device layout with
  | Ok cp ->
    check string "shutdown reason recorded" "shutdown"
      cp.Blackbox.state.Blackbox.reason
  | Error m -> Alcotest.failf "no shutdown checkpoint: %s" m

let suite =
  [
    Alcotest.test_case "event codec roundtrips" `Quick test_codec_roundtrip;
    Alcotest.test_case "checkpoint cadence throttles force checkpoints" `Quick
      test_checkpoint_cadence;
    Alcotest.test_case "shutdown checkpoints regardless of cadence" `Quick
      test_shutdown_checkpoints_despite_cadence;
    Alcotest.test_case "shutdown checkpoint decodes" `Quick
      test_shutdown_checkpoint;
    Alcotest.test_case "crash names the in-flight op" `Quick
      test_crash_names_in_flight_op;
    Alcotest.test_case "torn checkpoint falls back a generation" `Quick
      test_torn_checkpoint_falls_back;
    Alcotest.test_case "torn checkpoint sweep: every offset, every tear mode"
      `Quick test_torn_checkpoint_every_offset_and_mode;
    Alcotest.test_case "profiler matches hand-computed workload" `Quick
      test_profile_hand_check;
    Alcotest.test_case "chrome export is balanced" `Quick test_chrome_export;
    Alcotest.test_case "metrics expose p90/p99" `Quick test_metrics_percentiles;
  ]
