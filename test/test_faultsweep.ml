(* Crash-injection sweep harness (ISSUE 5): the Crash_plan coordinate
   layer, the bounded sweep with every tear mode, the scavenge-mode
   sweep, and the run_op catch-all regression. *)

open Cedar_util
open Cedar_disk
open Cedar_fsd
module C = Cedar_workload.Concurrent
module S = Cedar_server.Server
module F = Cedar_server.Faultsweep

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let fresh_fs () =
  let clock = Simclock.create () in
  let device = Device.create ~clock Geometry.small_test in
  Fsd.format device (Params.for_geometry Geometry.small_test);
  let fs, _ = Fsd.boot device in
  (device, fs)

(* ------------------------------------------------------------------ *)
(* Crash_plan: the recording observer and force-relative arming         *)

let test_crash_plan_records_and_arms () =
  let device, fs = fresh_fs () in
  let plan = Crash_plan.attach device in
  ignore (Fsd.create fs ~name:"a/one" (Bytes.create 700));
  Crash_plan.note_force plan;
  Fsd.force fs;
  ignore (Fsd.create fs ~name:"a/two" (Bytes.create 700));
  Crash_plan.note_force plan;
  Fsd.force fs;
  let w = Crash_plan.writes_per_interval plan in
  check int "one interval per force plus the open tail" 3 (Array.length w);
  (* note_force fires just before Fsd.force, so force m's commit writes
     land in the interval it opens: interval 0 holds the first create's
     data writes, interval 1 holds force 1's commit plus the second
     create, and the open tail holds force 2's commit. *)
  check bool "interval 0 saw the first create" true (w.(0) > 0);
  check bool "interval 1 saw force 1 and the second create" true (w.(1) > 0);
  check bool "the open tail saw force 2's commit" true (w.(2) > 0);
  (* Re-run the same ops arming (force 2, write 0): the very first
     sector write of force 2's commit must die, after force 1's commit
     has fully landed. *)
  let device2, fs2 = fresh_fs () in
  let plan2 = Crash_plan.attach device2 in
  Crash_plan.arm plan2 ~force:2 ~write:0 ~tear:Device.Tear_none;
  ignore (Fsd.create fs2 ~name:"a/one" (Bytes.create 700));
  Crash_plan.note_force plan2;
  Fsd.force fs2;
  (match
     ignore (Fsd.create fs2 ~name:"a/two" (Bytes.create 700));
     Crash_plan.note_force plan2;
     Fsd.force fs2
   with
  | () -> Alcotest.fail "armed crash never fired"
  | exception Device.Crash_during_write _ -> ());
  (* Force 1's commit completed untouched; force 2 never landed. *)
  Device.cancel_write_crash device2;
  let fs3, _ = Fsd.boot device2 in
  check bool "pre-crash commit survives" true (Fsd.exists fs3 ~name:"a/one");
  check bool "uncommitted create is wholly absent" false
    (Fsd.exists fs3 ~name:"a/two")

(* ------------------------------------------------------------------ *)
(* Tear modes leave the planned sector states behind                    *)

let test_tear_modes () =
  let probe tear =
    let clock = Simclock.create () in
    let device = Device.create ~clock Geometry.tiny_test in
    let sb = Geometry.tiny_test.Geometry.sector_bytes in
    let img = Bytes.make (3 * sb) 'x' in
    Device.plan_write_crash_tear device ~after_sectors:1 ~tear;
    (match Device.write_run device ~sector:10 img with
    | () -> Alcotest.fail "tear never fired"
    | exception Device.Crash_during_write { sector } ->
      check int "interrupted at the second sector" 11 sector);
    device
  in
  let d = probe Device.Tear_none in
  check bool "prefix sector written" true (Device.written_ever d 10);
  check bool "interrupted sector untouched" false (Device.written_ever d 11);
  let d = probe Device.Tear_zero in
  check bool "zeroed sector readable" true
    (Bytes.for_all (fun c -> c = '\000') (Device.read d 11));
  let d = probe Device.Tear_garbage in
  check bool "garbage sector readable but wrong" true
    (not (Bytes.for_all (fun c -> c = 'x') (Device.read d 11))
    && not (Bytes.for_all (fun c -> c = '\000') (Device.read d 11)));
  let d = probe (Device.Tear_damage 1) in
  check bool "damaged sector unreadable" true (Device.is_damaged d 11)

(* ------------------------------------------------------------------ *)
(* Regression (ISSUE 5): a non-Fs_error exception mid-op must not wedge
   the scheduler — the session dies with a typed abort and the other
   sessions run to completion. *)

let test_run_op_catch_all () =
  let device, fs = fresh_fs () in
  (* Fire an injected failure from inside client 0's first data write,
     i.e. from deep inside Fsd.submit — exactly where only Fs_error used
     to be caught. *)
  let armed = ref true in
  Device.set_observer device
    (Some
       (fun ~rw ~sector:_ ~count:_ ->
         if !armed && rw = `W then begin
           armed := false;
           failwith "injected-device-wedge"
         end));
  let scripts =
    [|
      [ C.Op (C.Create { name = "c00/boom"; bytes = 700; fill = 1 }) ];
      [
        C.Think 5_000;
        C.Op (C.Create { name = "c01/fine"; bytes = 700; fill = 2 });
        C.Op C.Force;
      ];
    |]
  in
  let r = S.serve fs scripts in
  check int "one session aborted" 1 r.S.total_aborted;
  check int "the abort is not an fs error" 0 r.S.total_errors;
  let s0 = List.nth r.S.per_session 0 in
  (match s0.S.r_aborted with
  | Some m ->
    check bool "abort names the exception" true
      (String.length m > 0
      && String.exists (fun _ -> true) m
      &&
      let needle = "injected-device-wedge" in
      let rec find i =
        i + String.length needle <= String.length m
        && (String.sub m i (String.length needle) = needle || find (i + 1))
      in
      find 0)
  | None -> Alcotest.fail "session 0 must carry the abort");
  (* The scheduler survived: client 1 finished and was acked. *)
  let s1 = List.nth r.S.per_session 1 in
  check int "client 1 acked its create" 1 s1.S.r_mutations;
  check bool "client 1's file exists" true (Fsd.exists fs ~name:"c01/fine")

(* ------------------------------------------------------------------ *)
(* The bounded sweep: every (force, write, tear) point of the first two
   force intervals of the 2-client reference script, zero violations. *)

let test_sweep_first_intervals_all_tears () =
  let s =
    F.sweep
      { F.default_cfg with F.max_forces = Some 2; tears = F.all_tears }
  in
  check bool "swept a real point space" true (s.F.sw_points > 20);
  check int "four runs per point" (4 * s.F.sw_points) s.F.sw_runs;
  check int "zero violations" 0 (List.length s.F.sw_violations);
  check bool "log replay is the common recovery path" true (s.F.sw_replay > 0);
  check int "every run recovered on a known path" s.F.sw_runs
    (s.F.sw_replay + s.F.sw_twin_repair + s.F.sw_scavenged)

(* Scavenge mode: both FNT copies destroyed after every crash; recovery
   must come back through the scavenger with the weakened oracle. *)
let test_sweep_scavenge_mode () =
  let s =
    F.sweep
      {
        F.clients = 2;
        tears = [ Cedar_disk.Device.Tear_none ];
        max_forces = Some 1;
        scavenge = true;
        workload = F.Reference;
      }
  in
  check bool "swept points" true (s.F.sw_points > 0);
  check int "zero violations" 0 (List.length s.F.sw_violations);
  check int "every run scavenged" s.F.sw_runs s.F.sw_scavenged

(* Determinism: the sweep summary is byte-identical across runs. *)
let test_sweep_deterministic () =
  let cfg =
    { F.default_cfg with F.max_forces = Some 1; tears = [ Device.Tear_zero ] }
  in
  let a = Cedar_obs.Jsonb.to_string (F.summary_json (F.sweep cfg)) in
  let b = Cedar_obs.Jsonb.to_string (F.summary_json (F.sweep cfg)) in
  check bool "same sweep, byte-identical summaries" true (String.equal a b)

let suite =
  [
    Alcotest.test_case "crash plan records and arms by force ordinal" `Quick
      test_crash_plan_records_and_arms;
    Alcotest.test_case "tear modes shape the interrupted sector" `Quick
      test_tear_modes;
    Alcotest.test_case "non-Fs_error exception aborts the session, not the \
                        scheduler" `Quick test_run_op_catch_all;
    Alcotest.test_case "sweep of first intervals, all tears, zero violations"
      `Slow test_sweep_first_intervals_all_tears;
    Alcotest.test_case "scavenge-mode sweep recovers via the scavenger" `Slow
      test_sweep_scavenge_mode;
    Alcotest.test_case "sweep summaries are deterministic" `Slow
      test_sweep_deterministic;
  ]
