(* The telemetry monitor: hand-computed interval maths over a private
   registry, sliding-window percentiles, ring eviction, the end-to-end
   determinism contract through the server, the zero-I/O sampling
   guarantee, and the open-loop generator the monitor exists to
   observe. *)

open Cedar_util
open Cedar_disk
open Cedar_obs
module Fsd = Cedar_fsd.Fsd
module Params = Cedar_fsd.Params
module C = Cedar_workload.Concurrent
module S = Cedar_server.Server

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let string = Alcotest.string
let close = Alcotest.float 1e-9

let small_fs () =
  let clock = Simclock.create () in
  let device = Device.create ~clock Geometry.small_test in
  Fsd.format device (Params.for_geometry Geometry.small_test);
  (device, fst (Fsd.boot device))

(* ------------------------------------------------------------------ *)
(* Interval maths, by hand                                             *)

let test_hand_computed_intervals () =
  let m = Metrics.create () in
  let clock = ref 0 in
  let busy = ref 0 in
  let work = Metrics.counter m "work.done" in
  Metrics.gauge m "dev.busy_us" (fun () -> !busy);
  (* pre-monitor history: the baseline must swallow it *)
  Metrics.add work 7;
  busy := 25;
  let mon = Monitor.create ~interval_us:100 ~now:(fun () -> !clock) m in
  Monitor.derive mon "busy_frac" (fun v ->
      float_of_int (v.Monitor.delta "dev.busy_us")
      /. float_of_int v.Monitor.dt_us);
  (* interval 1: 3 units of work, 40 us of device busy *)
  Metrics.add work 3;
  busy := 65;
  clock := 100;
  let s1 = Monitor.sample_now mon in
  check int "dt spans the interval" 100 s1.Monitor.dt_us;
  check int "counter reports the delta, not the total" 3
    (List.assoc "work.done" s1.Monitor.counters);
  check int "gauge reports the point value" 65
    (List.assoc "dev.busy_us" s1.Monitor.gauges);
  check close "busy fraction = 40/100" 0.4
    (List.assoc "busy_frac" s1.Monitor.derived);
  (* interval 2: completely idle *)
  clock := 200;
  let s2 = Monitor.sample_now mon in
  check int "idle interval delta" 0 (List.assoc "work.done" s2.Monitor.counters);
  check close "idle busy fraction" 0.0
    (List.assoc "busy_frac" s2.Monitor.derived);
  (* interval 3: late sample — dt stretches, the fraction still lands *)
  Metrics.add work 5;
  busy := 215;
  clock := 350;
  let s3 = Monitor.sample_now mon in
  check int "stretched dt" 150 s3.Monitor.dt_us;
  check int "delta across the stretch" 5
    (List.assoc "work.done" s3.Monitor.counters);
  check close "saturated busy fraction = 150/150" 1.0
    (List.assoc "busy_frac" s3.Monitor.derived);
  check int "three samples retained" 3 (Monitor.count mon)

let test_cadence () =
  let m = Metrics.create () in
  let clock = ref 0 in
  let mon = Monitor.create ~interval_us:100 ~now:(fun () -> !clock) m in
  check int "next sample due one interval after creation" 100
    (Monitor.due_at mon);
  clock := 99;
  Monitor.maybe_sample mon;
  check int "one tick early: no sample" 0 (Monitor.total mon);
  clock := 100;
  Monitor.maybe_sample mon;
  check int "on the due tick: sample" 1 (Monitor.total mon);
  Monitor.maybe_sample mon;
  check int "same instant: no second sample" 1 (Monitor.total mon);
  check int "cadence advances from the sample time" 200 (Monitor.due_at mon)

(* ------------------------------------------------------------------ *)
(* Sliding-window percentiles                                          *)

let test_window_percentiles () =
  let m = Metrics.create () in
  let clock = ref 0 in
  let lat = Metrics.dist m "lat_us" in
  let mon =
    Monitor.create ~window:10 ~interval_us:100 ~now:(fun () -> !clock) m
  in
  Monitor.watch_dist mon "lat_us";
  (* not registered values yet: w_n = 0 *)
  clock := 100;
  let s0 = Monitor.sample_now mon in
  check int "empty window" 0
    (List.assoc "lat_us" s0.Monitor.dists).Monitor.w_n;
  (* 1..100 recorded; the window keeps the newest 10 (91..100) *)
  for i = 1 to 100 do
    Stats.add lat (float_of_int i)
  done;
  clock := 200;
  let s1 = Monitor.sample_now mon in
  let w = List.assoc "lat_us" s1.Monitor.dists in
  check int "window holds its bound" 10 w.Monitor.w_n;
  check close "p50 by nearest rank over 91..100" 95.0 w.Monitor.w_p50;
  check close "p90 by nearest rank" 99.0 w.Monitor.w_p90;
  check close "p99 rounds up to the max" 100.0 w.Monitor.w_p99;
  (* window slides: three more values push out 91..93 *)
  List.iter (fun v -> Stats.add lat v) [ 7.0; 7.0; 7.0 ];
  clock := 300;
  let s2 = Monitor.sample_now mon in
  let w2 = List.assoc "lat_us" s2.Monitor.dists in
  check int "still bounded" 10 w2.Monitor.w_n;
  (* window now 94..100,7,7,7; sorted 7,7,7,94..100: p50 = 5th = 95 *)
  check close "slid p50" 95.0 w2.Monitor.w_p50

(* ------------------------------------------------------------------ *)
(* Ring eviction                                                       *)

let test_ring_eviction () =
  let m = Metrics.create () in
  let clock = ref 0 in
  let mon = Monitor.create ~ring:8 ~interval_us:10 ~now:(fun () -> !clock) m in
  for i = 1 to 20 do
    clock := i * 10;
    ignore (Monitor.sample_now mon : Monitor.sample)
  done;
  check int "retained capped at the ring" 8 (Monitor.count mon);
  check int "lifetime total keeps counting" 20 (Monitor.total mon);
  check int "evictions counted" 12 (Monitor.evicted mon);
  let ats = List.map (fun s -> s.Monitor.at_us) (Monitor.samples mon) in
  check (Alcotest.list int) "oldest-first, newest survive"
    [ 130; 140; 150; 160; 170; 180; 190; 200 ]
    ats;
  check bool "last_sample is the newest" true
    (match Monitor.last_sample mon with
    | Some s -> s.Monitor.at_us = 200
    | None -> false)

(* ------------------------------------------------------------------ *)
(* End-to-end determinism through the server                           *)

let open_loop_timelines () =
  let clock = Simclock.create () in
  let device = Device.create ~clock Geometry.small_test in
  Fsd.format device (Params.for_geometry Geometry.small_test);
  let fs, _ = Fsd.boot device in
  let mon = Fsd.enable_monitor fs in
  let scripts =
    C.open_loop
      { C.default_open with C.ol_ops = 80; ol_rate_per_s = 30.0 }
      ~clients:4
  in
  let _r = S.serve fs scripts in
  let samples = Monitor.samples mon in
  (Jsonb.to_string (Timeline.to_json samples), Timeline.to_csv samples,
   List.length samples)

let test_timeline_determinism () =
  let j1, c1, n1 = open_loop_timelines () in
  let j2, c2, n2 = open_loop_timelines () in
  check bool "enough samples to mean anything" true (n1 >= 10);
  check int "same sample count" n1 n2;
  check string "byte-identical JSON timelines" j1 j2;
  check string "byte-identical CSV timelines" c1 c2;
  (match Jsonb.of_string j1 with
  | Ok (Jsonb.Arr l) -> check int "JSON parses back to one object per sample" n1 (List.length l)
  | Ok _ -> Alcotest.fail "timeline JSON is not an array"
  | Error m -> Alcotest.failf "timeline JSON does not parse: %s" m);
  (* every sample carries the saturation gauges the sweep keys on *)
  check bool "derived gauges present" true
    (String.length c1 > 0
    &&
    let header = String.sub c1 0 (String.index c1 '\n') in
    let has s =
      let lh = String.length header and ls = String.length s in
      let rec go i = i + ls <= lh && (String.sub header i ls = s || go (i + 1)) in
      go 0
    in
    has "d.sat.device_busy" && has "d.sat.op_rate_s"
    && has "server.commit_wait_us.p99")

(* Sampling must cost no device I/O: the same run with the monitor on
   and off performs identical I/O and ends at the identical virtual
   time. *)
let test_sampling_is_io_free () =
  let run monitored =
    let clock = Simclock.create () in
    let device = Device.create ~clock Geometry.small_test in
    Fsd.format device (Params.for_geometry Geometry.small_test);
    let fs, _ = Fsd.boot device in
    if monitored then ignore (Fsd.enable_monitor fs : Monitor.t);
    for i = 0 to 19 do
      ignore
        (Fsd.create fs
           ~name:(Printf.sprintf "m/f%02d" i)
           (Bytes.make 700 'x'));
      Fsd.tick fs ~us:60_000
    done;
    Fsd.force fs;
    ( Option.value ~default:0 (Metrics.read (Device.metrics device) "device.ios"),
      Simclock.now clock,
      match Fsd.monitor fs with Some m -> Monitor.total m | None -> 0 )
  in
  let ios_off, t_off, _ = run false in
  let ios_on, t_on, taken = run true in
  check bool "monitor actually sampled" true (taken > 0);
  check int "identical device I/O with the monitor on" ios_off ios_on;
  check int "identical virtual end time" t_off t_on

(* A deferred/queued device charges busy time on its own horizon, which
   can run ahead of the sampling clock: one interval may see more busy
   microseconds than wall microseconds. The gauge must clamp at 1.0
   (saturated) rather than report a fraction above one (ISSUE 10
   bugfix). *)
let test_device_busy_clamped () =
  let clock = Simclock.create () in
  let device = Device.create ~clock Geometry.small_test in
  Fsd.format device (Params.for_geometry Geometry.small_test);
  let fs, _ = Fsd.boot device in
  Device.set_deferred device true;
  Device.set_queue device ~policy:Device.Sstf ~depth:8;
  let mon = Fsd.enable_monitor ~interval_us:1_000 fs in
  let busy0 =
    Option.value ~default:0 (Metrics.read (Device.metrics device) "device.busy_us")
  in
  (* A burst of large creates back to back: the deferred device does all
     the work on its horizon while the clock stands still. *)
  for i = 0 to 11 do
    ignore (Fsd.create fs ~name:(Printf.sprintf "b/f%02d" i) (Bytes.make 6_000 'z'))
  done;
  Fsd.force fs;
  (* One short interval elapses; the monitor samples it. *)
  Fsd.tick fs ~us:1_000;
  check bool "monitor sampled" true (Monitor.total mon > 0);
  let s =
    match Monitor.last_sample mon with
    | Some s -> s
    | None -> Alcotest.fail "no sample retained"
  in
  let busy1 = List.assoc "device.busy_us" s.Monitor.gauges in
  check bool
    (Printf.sprintf "device busy delta (%d us) overran the interval (%d us)"
       (busy1 - busy0) s.Monitor.dt_us)
    true
    (busy1 - busy0 > s.Monitor.dt_us);
  check close "sat.device_busy clamps to 1.0" 1.0
    (List.assoc "sat.device_busy" s.Monitor.derived)

let test_monitor_toggle () =
  let _device, fs = small_fs () in
  check bool "off by default" true (Fsd.monitor fs = None);
  let m = Fsd.enable_monitor ~interval_us:50_000 fs in
  check int "interval override taken" 50_000 (Monitor.interval_us m);
  Fsd.tick fs ~us:200_000;
  check bool "demon path polls the monitor" true (Monitor.total m > 0);
  Fsd.disable_monitor fs;
  check bool "disabled detaches" true (Fsd.monitor fs = None);
  let before = (Fsd.counters fs).Fsd.ops in
  ignore (Fsd.create fs ~name:"m/after" (Bytes.make 100 'y'));
  check int "ops still run after detach" (before + 1) (Fsd.counters fs).Fsd.ops

(* ------------------------------------------------------------------ *)
(* The open-loop generator                                             *)

let test_open_loop_generator () =
  let spec = { C.default_open with C.ol_ops = 200 } in
  let a = C.open_loop spec ~clients:5 in
  let b = C.open_loop spec ~clients:5 in
  check bool "same spec, same scripts" true (a = b);
  let total_ops =
    Array.fold_left
      (fun n script ->
        n
        + List.length
            (List.filter (function C.Op _ -> true | _ -> false) script))
      0 a
  in
  check int "every arrival lands on some client" 200 total_ops;
  Array.iter
    (fun script ->
      (* arrival deadlines are monotone within a session *)
      let ats =
        List.filter_map (function C.At t -> Some t | _ -> None) script
      in
      check bool "At deadlines monotone nondecreasing" true
        (List.for_all2 ( <= ) ats (List.tl ats @ [ max_int ]));
      List.iter
        (function
          | C.Op (C.Create { bytes; _ }) ->
            check bool "bounded-Pareto sizes stay in range" true
              (bytes >= spec.C.ol_bytes_min && bytes <= spec.C.ol_bytes_max)
          | _ -> ())
        script)
    a;
  (* a different seed reshuffles the traffic *)
  check bool "seed changes the stream" true
    (C.open_loop { spec with C.ol_seed = 2 } ~clients:5 <> a)

let test_open_loop_replays_cleanly () =
  let _device, fs = small_fs () in
  let scripts =
    C.open_loop
      { C.default_open with C.ol_ops = 60; ol_rate_per_s = 25.0 }
      ~clients:3
  in
  let r = S.serve fs scripts in
  check int "no client errors" 0 r.S.total_errors;
  check int "no aborted sessions" 0 r.S.total_aborted;
  check int "every arrival executed" 60 r.S.total_ops

let suite =
  [
    ("hand-computed interval deltas", `Quick, test_hand_computed_intervals);
    ("sampling cadence", `Quick, test_cadence);
    ("sliding-window percentiles", `Quick, test_window_percentiles);
    ("ring eviction", `Quick, test_ring_eviction);
    ("timeline determinism end-to-end", `Quick, test_timeline_determinism);
    ("sampling performs zero device I/O", `Quick, test_sampling_is_io_free);
    ("sat.device_busy clamps at 1.0", `Quick, test_device_busy_clamped);
    ("enable/disable round trip", `Quick, test_monitor_toggle);
    ("open-loop generator", `Quick, test_open_loop_generator);
    ("open-loop replays cleanly", `Quick, test_open_loop_replays_cleanly);
  ]
