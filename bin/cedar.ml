(* cedar -- a command-line tool over simulated Cedar volumes stored as
   disk-image files.

     cedar mkfs vol.img                  create an FSD volume
     cedar mkfs --fs cfs vol.img         create a CFS volume
     cedar put vol.img name < file       store stdin as a new version
     cedar get vol.img name > file       print the newest version
     cedar ls vol.img [prefix]           list files with properties
     cedar rm vol.img name               delete the newest version
     cedar info vol.img                  volume summary + structural check
     cedar crash vol.img                 mark the volume as not shut down
     cedar recover vol.img               boot (FSD: log replay; CFS: scavenge)
     cedar scavenge vol.img              rebuild metadata from leader pages
     cedar stats vol.img [--json]        per-op I/O + log tables (Tables 2-4)
     cedar trace vol.img [--limit N]     dump the event trace of a scripted run
     cedar trace vol.img --chrome out.json   export the span tree for Perfetto
     cedar profile vol.img [--json]      latency + group-commit profiles
     cedar serve vol.img --clients N     concurrent sessions over group commit
     cedar serve vol.img --watch         live telemetry dashboard while serving
     cedar serve vol.img --open-loop R   Poisson open-loop traffic at R ops/s
     cedar serve --volumes V --clients N sharded multi-volume scale-out run
     cedar churn [--ops N] [--tiny]      wrap the log under churn, self-verify
     cedar faultsweep [--tear MODE]      crash the server at every sector write
     cedar faultsweep --wrap             crash inside the log's wrap window
     cedar blackbox vol.img [--json]     decode the on-disk flight recorder

   Mutating commands shut the file system down cleanly before saving the
   image; [crash] deliberately skips that, so the next boot exercises
   recovery. *)

open Cedar_util
open Cedar_disk

let fail fmt = Format.kasprintf (fun s -> prerr_endline ("cedar: " ^ s); exit 1) fmt

let load_device path =
  if not (Sys.file_exists path) then fail "no such image: %s" path;
  let ic = open_in_bin path in
  let d = Device.load ~clock:(Simclock.create ()) ic in
  close_in ic;
  d

let save_device device path =
  let oc = open_out_bin path in
  Device.dump device oc;
  close_out oc

type vol = Fsd_vol of Cedar_fsd.Fsd.t | Cfs_vol of Cedar_cfs.Cfs.t

(* Which system formatted this image? Probe the boot-page magic. *)
let detect device =
  match Cedar_fsd.Boot_page.read device with
  | Some _ -> `Fsd
  | None -> `Cfs

let boot_vol device =
  match detect device with
  | `Fsd ->
    let fs, report =
      match Cedar_fsd.Fsd.try_boot device with
      | `Ok v -> v
      | `Needs_scavenge reason ->
        Printf.eprintf "(metadata damage beyond log replay: %s; scavenging)\n"
          reason;
        let r = Cedar_fsd.Scavenge.run device in
        Printf.eprintf "(scavenge: %s, %.1f s)\n"
          (Format.asprintf "%a" Cedar_fsd.Scavenge.pp_report r)
          (Simclock.s_of_us r.Cedar_fsd.Scavenge.duration_us);
        Cedar_fsd.Fsd.boot device
    in
    if report.Cedar_fsd.Fsd.replayed_records > 0 then
      Printf.eprintf "(recovery replayed %d log records in %.2f s)\n"
        report.Cedar_fsd.Fsd.replayed_records
        (Simclock.s_of_us report.Cedar_fsd.Fsd.log_replay_us);
    Fsd_vol fs
  | `Cfs -> (
    match Cedar_cfs.Cfs.boot device with
    | `Ok fs -> Cfs_vol fs
    | `Needs_scavenge ->
      Printf.eprintf "(volume was not shut down cleanly: scavenging)\n";
      let fs, r = Cedar_cfs.Cfs.scavenge device in
      Printf.eprintf "(scavenge recovered %d files, lost %d, %.1f s)\n"
        r.Cedar_cfs.Cfs.files_recovered r.Cedar_cfs.Cfs.files_lost
        (Simclock.s_of_us r.Cedar_cfs.Cfs.duration_us);
      Cfs_vol fs)

let ops_of = function
  | Fsd_vol fs -> Cedar_fsd.Fsd.ops fs
  | Cfs_vol fs -> Cedar_cfs.Cfs.ops fs

let shutdown_vol = function
  | Fsd_vol fs -> Cedar_fsd.Fsd.shutdown fs
  | Cfs_vol fs -> Cedar_cfs.Cfs.shutdown fs

let guard f =
  try f ()
  with Cedar_fsbase.Fs_error.Fs_error e ->
    fail "%s" (Cedar_fsbase.Fs_error.to_string e)

let with_volume ?(save = true) path f =
  guard (fun () ->
      let device = load_device path in
      let vol = boot_vol device in
      let result = f vol in
      if save then begin
        shutdown_vol vol;
        save_device device path
      end;
      result)

(* ------------------------------------------------------------------ *)
(* Commands                                                            *)

let geometry_of = function
  | "t300" -> Geometry.trident_t300
  | "small" -> Geometry.small_test
  | g -> fail "unknown geometry %S (t300|small)" g

let cmd_mkfs path fs_kind geom_name log_vam track_tolerant =
  let geom = geometry_of geom_name in
  let device = Device.create ~clock:(Simclock.create ()) geom in
  (match fs_kind with
  | "fsd" ->
    let p =
      {
        (Cedar_fsd.Params.for_geometry geom) with
        Cedar_fsd.Params.log_vam;
        track_tolerant_log = track_tolerant;
      }
    in
    Cedar_fsd.Fsd.format device p
  | "cfs" ->
    if log_vam || track_tolerant then
      fail "--log-vam/--track-tolerant are FSD extensions";
    Cedar_cfs.Cfs.format device (Cedar_cfs.Cfs_layout.params_for_geometry geom)
  | k -> fail "unknown file system %S (fsd|cfs)" k);
  save_device device path;
  Printf.printf "formatted %s as %s on %s%s%s\n" path fs_kind
    (Format.asprintf "%a" Geometry.pp geom)
    (if log_vam then " +vam-logging" else "")
    (if track_tolerant then " +track-tolerant-log" else "")

let read_stdin () =
  let buf = Buffer.create 4096 in
  (try
     while true do
       Buffer.add_channel buf stdin 1
     done
   with End_of_file -> ());
  Buffer.to_bytes buf

let cmd_put path name =
  let data = read_stdin () in
  with_volume path (fun vol ->
      let ops = ops_of vol in
      let info = ops.Cedar_fsbase.Fs_ops.create ~name ~data in
      Printf.printf "%s!%d  %d bytes\n" info.Cedar_fsbase.Fs_ops.name
        info.Cedar_fsbase.Fs_ops.version info.Cedar_fsbase.Fs_ops.byte_size)

let cmd_get path name =
  with_volume ~save:false path (fun vol ->
      let ops = ops_of vol in
      print_bytes (ops.Cedar_fsbase.Fs_ops.read_all ~name))

let cmd_ls path prefix =
  with_volume ~save:false path (fun vol ->
      let ops = ops_of vol in
      List.iter
        (fun i ->
          Printf.printf "%8d  %s!%d\n" i.Cedar_fsbase.Fs_ops.byte_size
            i.Cedar_fsbase.Fs_ops.name i.Cedar_fsbase.Fs_ops.version)
        (ops.Cedar_fsbase.Fs_ops.list ~prefix))

let cmd_rm path name =
  with_volume path (fun vol ->
      let ops = ops_of vol in
      ops.Cedar_fsbase.Fs_ops.delete ~name;
      Printf.printf "deleted newest version of %s\n" name)

let cmd_info path =
  with_volume ~save:false path (fun vol ->
      match vol with
      | Fsd_vol fs ->
        let layout = Cedar_fsd.Fsd.layout fs in
        Printf.printf "FSD volume on %s\n"
          (Format.asprintf "%a" Geometry.pp layout.Cedar_fsd.Layout.geom);
        Printf.printf "layout: %s\n"
          (Format.asprintf "%a" Cedar_fsd.Layout.pp layout);
        Printf.printf "free sectors: %d\n" (Cedar_fsd.Fsd.free_sectors fs);
        Printf.printf "files: %d\n"
          (List.length ((Cedar_fsd.Fsd.ops fs).Cedar_fsbase.Fs_ops.list ~prefix:""));
        (match Cedar_fsd.Fsd.check fs with
        | Ok () -> print_endline "structural check: ok"
        | Error m -> Printf.printf "structural check FAILED: %s\n" m)
      | Cfs_vol fs ->
        Printf.printf "CFS volume\n";
        Printf.printf "free sector hints: %d\n" (Cedar_cfs.Cfs.free_sector_hints fs);
        Printf.printf "files: %d\n"
          (List.length ((Cedar_cfs.Cfs.ops fs).Cedar_fsbase.Fs_ops.list ~prefix:""));
        (match Cedar_cfs.Cfs.check fs with
        | Ok () -> print_endline "structural check: ok"
        | Error m -> Printf.printf "structural check FAILED: %s\n" m))

(* Simulate an operator hitting the big red switch: boot the volume and
   save it again WITHOUT a clean shutdown. *)
let cmd_crash path =
  guard @@ fun () ->
  let device = load_device path in
  (* Trace while crashing so the group-commit forces checkpoint the
     black box: [cedar blackbox] then has a story to tell. *)
  Cedar_obs.Trace.enable (Device.trace device);
  let vol = boot_vol device in
  let ops = ops_of vol in
  (* a little committed work for the flight recorder, then an
     uncommitted create to make the next recovery interesting *)
  ignore
    (ops.Cedar_fsbase.Fs_ops.create ~name:"pre-crash" ~data:(Bytes.create 640));
  ops.Cedar_fsbase.Fs_ops.force ();
  ignore (ops.Cedar_fsbase.Fs_ops.create ~name:"crash-marker" ~data:(Bytes.create 42));
  save_device device path;
  Printf.printf "%s now looks like a crashed volume (uncommitted create pending)\n" path

let cmd_inspect path =
  with_volume ~save:false path (fun vol ->
      match vol with
      | Fsd_vol fs -> print_string (Cedar_fsd.Inspect.volume_report fs)
      | Cfs_vol _ -> fail "inspect currently supports FSD volumes")

let cmd_recover path =
  guard @@ fun () ->
  let device = load_device path in
  (match detect device with
  | `Fsd ->
    let fs, r = Cedar_fsd.Fsd.boot device in
    Printf.printf
      "FSD recovery: %d records, %d pages home, %d corrected sectors, VAM %s; %.2f s total\n"
      r.Cedar_fsd.Fsd.replayed_records r.Cedar_fsd.Fsd.replayed_pages
      r.Cedar_fsd.Fsd.corrected_sectors
      (match r.Cedar_fsd.Fsd.vam_source with
      | Cedar_fsd.Fsd.Vam_loaded -> "loaded"
      | Cedar_fsd.Fsd.Vam_replayed -> "replayed from the log"
      | Cedar_fsd.Fsd.Vam_reconstructed -> "reconstructed")
      (Simclock.s_of_us r.Cedar_fsd.Fsd.total_us);
    Cedar_fsd.Fsd.shutdown fs
  | `Cfs ->
    let fs, r = Cedar_cfs.Cfs.scavenge device in
    Printf.printf "CFS scavenge: %d files recovered, %d lost, %.1f s\n"
      r.Cedar_cfs.Cfs.files_recovered r.Cedar_cfs.Cfs.files_lost
      (Simclock.s_of_us r.Cedar_cfs.Cfs.duration_us);
    Cedar_cfs.Cfs.shutdown fs);
  save_device device path

(* Scavenge of last resort: rebuild the name table and VAM from whatever
   survives on disk (FSD: leader pages; CFS: its own scavenger), then boot
   to prove the result is sound. *)
let cmd_scavenge path =
  guard @@ fun () ->
  let device = load_device path in
  (match detect device with
  | `Fsd ->
    let r = Cedar_fsd.Scavenge.run device in
    Printf.printf "FSD scavenge: %s; %.1f s\n"
      (Format.asprintf "%a" Cedar_fsd.Scavenge.pp_report r)
      (Simclock.s_of_us r.Cedar_fsd.Scavenge.duration_us);
    let fs, _ = Cedar_fsd.Fsd.boot device in
    (match Cedar_fsd.Fsd.check fs with
    | Ok () -> print_endline "structural check: ok"
    | Error m -> Printf.printf "structural check FAILED: %s\n" m);
    Cedar_fsd.Fsd.shutdown fs
  | `Cfs ->
    let fs, r = Cedar_cfs.Cfs.scavenge device in
    Printf.printf "CFS scavenge: %d files recovered, %d lost, %.1f s\n"
      r.Cedar_cfs.Cfs.files_recovered r.Cedar_cfs.Cfs.files_lost
      (Simclock.s_of_us r.Cedar_cfs.Cfs.duration_us);
    Cedar_cfs.Cfs.shutdown fs);
  save_device device path

(* ------------------------------------------------------------------ *)
(* Observability: stats / trace replay the fixed scripted workload     *)

module Obs = Cedar_obs
module Script = Cedar_workload.Obs_script

(* Live --watch rendering: one plain-text frame per monitor sample. On a
   tty each frame repaints the screen; on a pipe frames are appended
   verbatim with no escape sequences, so redirected output is the
   deterministic frame sequence itself. *)
let attach_watch out mon =
  let tty =
    try Unix.isatty (Unix.descr_of_out_channel out)
    with Unix.Unix_error _ -> false
  in
  Obs.Monitor.set_on_sample mon (fun s ->
      if tty then output_string out "\x1b[2J\x1b[H";
      output_string out
        (Obs.Timeline.render_frame
           ~spark:[ "sat.device_busy"; "sat.op_rate_s"; "sat.reject_rate_s" ]
           ~history:(Obs.Monitor.samples mon) s);
      if not tty then output_char out '\n';
      flush out)

let write_text path s =
  if path = "-" then (print_string s; if s = "" || s.[String.length s - 1] <> '\n' then print_newline ())
  else begin
    let oc = open_out path in
    output_string oc s;
    if s = "" || s.[String.length s - 1] <> '\n' then output_char oc '\n';
    close_out oc
  end

let counters_of = function
  | Fsd_vol fs -> Some (Cedar_fsd.Fsd.counters_json fs)
  | Cfs_vol _ -> None

(* Run the scripted workload with tracing on; the volume is NOT saved,
   so the image on disk is untouched by the measurement files. *)
let cmd_stats path json watch =
  with_volume ~save:false path (fun vol ->
      let ops = ops_of vol in
      let device = ops.Cedar_fsbase.Fs_ops.device in
      Script.warmup ops;
      if watch then begin
        match vol with
        | Cfs_vol _ -> fail "--watch requires an FSD volume (telemetry monitor)"
        | Fsd_vol fs ->
          (* frames to stderr under --json so the report stays parseable *)
          attach_watch (if json then stderr else stdout)
            (Cedar_fsd.Fsd.enable_monitor fs)
      end;
      let tr = Device.trace device in
      Obs.Trace.enable tr;
      Script.scripted ops;
      Obs.Trace.disable tr;
      let entries = Obs.Trace.to_list tr in
      let per_op = Obs.Tables.per_op entries in
      let log = Obs.Tables.log_activity entries in
      let sector_bytes = (Device.geometry device).Geometry.sector_bytes in
      if json then begin
        let obj =
          Obs.Jsonb.Obj
            ([
               ( "workload",
                 Obs.Jsonb.Obj
                   [
                     ("files", Obs.Jsonb.Int Script.n);
                     ("bytes_each", Obs.Jsonb.Int Script.bytes_each);
                   ] );
               ("per_op", Obs.Tables.per_op_json per_op);
               ("log", Obs.Tables.log_json ~sector_bytes log);
               ("metrics", Obs.Metrics.to_json (Device.metrics device));
               ("iostats", Iostats.to_json (Device.stats device));
             ]
            @
            match counters_of vol with
            | Some c -> [ ("fsd_counters", c) ]
            | None -> [])
        in
        print_endline (Obs.Jsonb.to_string_pretty obj)
      end
      else begin
        Printf.printf
          "scripted workload: %d files of %d bytes under %s/ (create, force, \
           open, read, list, delete, force)\n\n"
          Script.n Script.bytes_each Script.dir;
        Format.printf "%a@.@." Obs.Tables.pp_per_op per_op;
        Format.printf "%a@.@." Obs.Tables.pp_log log;
        Format.printf "%a@." Obs.Metrics.pp (Device.metrics device)
      end)

(* Tracing is enabled BEFORE boot so recovery-phase and VAM-rebuild
   events are captured too. *)
let cmd_trace path limit chrome =
  guard @@ fun () ->
  (match limit with
  | Some n when n <= 0 -> fail "--limit must be a positive entry count (got %d)" n
  | Some _ | None -> ());
  let device = load_device path in
  Obs.Trace.enable (Device.trace device);
  let vol = boot_vol device in
  let ops = ops_of vol in
  (* Under --chrome an FSD volume also runs the monitor, so the export
     carries counter tracks alongside the span tree. *)
  let mon =
    match (chrome, vol) with
    | Some _, Fsd_vol fs -> Some (Cedar_fsd.Fsd.enable_monitor fs)
    | _ -> None
  in
  Script.warmup ops;
  Script.scripted ops;
  let tr = Device.trace device in
  let entries = Obs.Trace.to_list tr in
  match chrome with
  | Some out ->
    let samples =
      match mon with Some m -> Obs.Monitor.samples m | None -> []
    in
    let oc = open_out out in
    output_string oc (Obs.Jsonb.to_string (Obs.Export.chrome ~samples entries));
    output_char oc '\n';
    close_out oc;
    Printf.printf
      "wrote %d trace entries as Chrome trace events to %s (load in \
       about://tracing or ui.perfetto.dev)\n"
      (List.length entries) out
  | None ->
    let shown =
      match limit with
      | None -> entries
      | Some n ->
        let len = List.length entries in
        List.filteri (fun i _ -> i >= len - n) entries
    in
    List.iter (fun e -> Format.printf "%a@." Obs.Trace.pp_entry e) shown;
    Printf.printf "(%d entries buffered, %d dropped)\n" (Obs.Trace.length tr)
      (Obs.Trace.dropped tr)

(* Fold the scripted run's trace into latency / group-commit profiles
   (the volume is not saved, like [stats]). *)
let cmd_profile path json =
  with_volume ~save:false path (fun vol ->
      let ops = ops_of vol in
      let device = ops.Cedar_fsbase.Fs_ops.device in
      Script.warmup ops;
      let tr = Device.trace device in
      Obs.Trace.enable tr;
      Script.scripted ops;
      Obs.Trace.disable tr;
      let reg = Device.metrics device in
      let prof =
        Obs.Profile.of_entries
          ?fnt_dirty_age_us:(Obs.Metrics.read_dist reg "fnt.dirty_page_age_us")
          (Obs.Trace.to_list tr)
      in
      if json then
        print_endline
          (Obs.Jsonb.to_string_pretty
             (Obs.Jsonb.Obj
                [
                  ( "workload",
                    Obs.Jsonb.Obj
                      [
                        ("files", Obs.Jsonb.Int Script.n);
                        ("bytes_each", Obs.Jsonb.Int Script.bytes_each);
                      ] );
                  ("profile", Obs.Profile.to_json prof);
                ]))
      else begin
        Printf.printf "scripted workload: %d files of %d bytes under %s/\n\n"
          Script.n Script.bytes_each Script.dir;
        Format.printf "%a@." Obs.Profile.pp prof
      end)

(* Multi-client server run: N sessions replay closed-loop scripts under
   the cooperative scheduler, sharing group-commit forces (§5.4). The
   image is not saved — serve is a measurement harness like [stats], and
   keeping the image untouched makes same-seed runs byte-comparable.

   With --volumes V > 1 the sessions run against V fresh in-memory
   volumes behind the sharded front end (one log and group-commit
   batcher each); a single on-disk IMAGE holds one volume, so the two
   are mutually exclusive. *)
let print_serve_report json r =
  let module S = Cedar_server.Server in
  if json then print_endline (Obs.Jsonb.to_string_pretty (S.report_json r))
  else begin
    Printf.printf
      "%d clients, %.2f s simulated: %d ops (%d mutating acked, %d \
       rejected, %d errors)\n"
      r.S.clients
      (Simclock.s_of_us r.S.duration_us)
      r.S.total_ops r.S.mutations_acked r.S.total_rejected r.S.total_errors;
    Printf.printf
      "group commit: %d log forces (%d server-initiated), %.1f acked \
       mutations/force\n"
      r.S.log_forces r.S.server_forces r.S.ops_per_force;
    Printf.printf
      "admission: %d rejects (%d queue-full, %d backpressure), %d \
       retries, %d dropped\n"
      r.S.total_rejected r.S.reject_queue_full r.S.reject_backpressure
      r.S.total_retries r.S.total_dropped;
    Printf.printf "commit wait: mean %.1f ms, p50 %.1f, p99 %.1f, max %.1f (%d waits)\n"
      (r.S.wait_mean_us /. 1000.) (r.S.wait_p50_us /. 1000.)
      (r.S.wait_p99_us /. 1000.) (r.S.wait_max_us /. 1000.) r.S.wait_n;
    Printf.printf "batches: %d, mean %.1f sessions woken, max %.0f\n"
      r.S.batch_n r.S.batch_mean r.S.batch_max;
    if List.length r.S.per_volume > 1 then
      List.iter
        (fun v ->
          Printf.printf
            "  volume %d: %d log forces (%d server-initiated), %d acked%s\n"
            v.S.vr_volume v.S.vr_log_forces v.S.vr_server_forces v.S.vr_acked
            (if v.S.vr_crashed then ", CRASHED" else ""))
        r.S.per_volume;
    List.iter
      (fun s ->
        Printf.printf
          "  session %02d: %d ops, %d acked, %d rejected, %d errors, \
           wait max %.1f ms\n"
          s.S.r_client s.S.r_ops s.S.r_mutations s.S.r_rejected
          s.S.r_errors
          (float_of_int s.S.r_wait_max_us /. 1000.))
      r.S.per_session
  end

let cmd_serve path volumes clients script_file seed think_us rounds json watch
    open_rate open_ops timeline timeline_csv disk_sched disk_qdepth =
  if clients < 1 then fail "--clients must be at least 1 (got %d)" clients;
  if clients > 99 then fail "--clients is capped at 99 (got %d)" clients;
  if volumes < 1 || volumes > 256 then
    fail "--volumes must be in [1, 256] (got %d)" volumes;
  if disk_qdepth < 0 || disk_qdepth > 128 then
    fail "--disk-qdepth must be in [0, 128] (got %d)" disk_qdepth;
  let sched =
    match Cedar_disk.Device.policy_of_string disk_sched with
    | Some p -> p
    | None ->
      fail "--disk-sched must be fifo, elevator or sstf (got %s)" disk_sched
  in
  (* Boot/recovery always runs synchronously; the request queue is a
     steady-state knob, applied to each device once its volume is up. *)
  let apply_queue dev =
    if disk_qdepth > 0 then
      Cedar_disk.Device.set_queue dev ~policy:sched ~depth:disk_qdepth
  in
  let module C = Cedar_workload.Concurrent in
  let scripts =
    match (script_file, open_rate) with
    | Some _, Some _ -> fail "--script and --open-loop are mutually exclusive"
    | Some file, None ->
      if not (Sys.file_exists file) then fail "no such script file: %s" file;
      let ic = open_in_bin file in
      let text = really_input_string ic (in_channel_length ic) in
      close_in ic;
      (match C.parse_script text with
      | Error m -> fail "%s: %s" file m
      | Ok s -> Array.init clients (fun client -> C.instantiate ~volumes s ~client))
    | None, Some rate ->
      if rate <= 0.0 then fail "--open-loop rate must be positive (got %g)" rate;
      if open_ops < 1 then fail "--ops must be at least 1 (got %d)" open_ops;
      let s =
        C.open_loop
          { C.default_open with C.ol_rate_per_s = rate; ol_ops = open_ops;
            ol_seed = seed }
          ~clients
      in
      if volumes > 1 then C.shard_scripts s ~volumes else s
    | None, None ->
      let s =
        C.makedo_scripts { C.default_spec with C.seed; think_us; rounds } ~clients
      in
      if volumes > 1 then C.shard_scripts s ~volumes else s
  in
  if volumes > 1 then begin
    (match path with
    | None -> ()
    | Some p ->
      fail
        "--volumes %d runs on fresh in-memory volumes (an IMAGE holds one \
         volume); omit %s"
        volumes p);
    if watch || timeline <> None || timeline_csv <> None then
      fail "--watch/--timeline need a single volume's monitor";
    guard (fun () ->
        let clock = Simclock.create () in
        let vset = Cedar_volumes.Volume_set.create_fresh ~clock volumes in
        for i = 0 to volumes - 1 do
          apply_queue (Cedar_volumes.Volume_set.device vset i)
        done;
        let r = Cedar_server.Server.serve_volumes vset scripts in
        print_serve_report json r)
  end
  else begin
    let path =
      match path with Some p -> p | None -> fail "serve: missing IMAGE argument"
    in
    with_volume ~save:false path (fun vol ->
        match vol with
        | Cfs_vol _ -> fail "serve requires an FSD volume (group commit is FSD-only)"
        | Fsd_vol fs ->
          apply_queue (Cedar_fsd.Fsd.device fs);
          let mon =
            if watch || timeline <> None || timeline_csv <> None then
              Some (Cedar_fsd.Fsd.enable_monitor fs)
            else None
          in
          (match mon with
          | Some m when watch ->
            (* frames to stderr under --json so the report stays parseable *)
            attach_watch (if json then stderr else stdout) m
          | Some _ | None -> ());
          let r = Cedar_server.Server.serve fs scripts in
          (match mon with
          | None -> ()
          | Some m ->
            let samples = Obs.Monitor.samples m in
            Option.iter
              (fun p -> write_text p (Obs.Jsonb.to_string_pretty (Obs.Timeline.to_json samples)))
              timeline;
            Option.iter (fun p -> write_text p (Obs.Timeline.to_csv samples))
              timeline_csv);
          print_serve_report json r)
  end

(* Latency anatomy: run a server workload with lifecycle tracing on,
   fold the trace into conserved per-op phase vectors (Critpath) and
   report which phase dominates the tail. The image is not saved, so
   same-seed runs are byte-comparable — `why --json` is deterministic. *)
let cmd_why path clients seed think_us rounds open_rate open_ops churn json
    op_filter top chrome =
  if clients < 1 then fail "--clients must be at least 1 (got %d)" clients;
  if clients > 99 then fail "--clients is capped at 99 (got %d)" clients;
  if top < 1 then fail "--top must be at least 1 (got %d)" top;
  let module C = Cedar_workload.Concurrent in
  let scripts =
    match (open_rate, churn) with
    | Some _, true -> fail "--open-loop and --churn are mutually exclusive"
    | Some rate, false ->
      if rate <= 0.0 then fail "--open-loop rate must be positive (got %g)" rate;
      if open_ops < 1 then fail "--ops must be at least 1 (got %d)" open_ops;
      C.open_loop
        { C.default_open with C.ol_rate_per_s = rate; ol_ops = open_ops;
          ol_seed = seed }
        ~clients
    | None, true ->
      C.churn_scripts
        { C.default_churn with C.churn_ops = open_ops; churn_seed = seed }
        ~clients
    | None, false ->
      C.makedo_scripts { C.default_spec with C.seed; think_us; rounds } ~clients
  in
  with_volume ~save:false path (fun vol ->
      match vol with
      | Cfs_vol _ -> fail "why requires an FSD volume (server lifecycles)"
      | Fsd_vol fs ->
        let tr = Cedar_fsd.Fsd.trace fs in
        (* A generous ring: a dropped lifecycle start would turn into an
           orphan and weaken the conservation statement. *)
        Obs.Trace.enable ~capacity:(1 lsl 20) tr;
        ignore (Cedar_server.Server.serve fs scripts : Cedar_server.Server.report);
        Obs.Trace.disable tr;
        let entries = Obs.Trace.to_list tr in
        let anatomy = Obs.Critpath.fold entries in
        (match chrome with
        | None -> ()
        | Some out ->
          let oc = open_out out in
          output_string oc (Obs.Jsonb.to_string (Obs.Export.chrome entries));
          close_out oc;
          Printf.eprintf "wrote Chrome trace to %s\n" out);
        if json then
          print_endline
            (Obs.Jsonb.to_string_pretty
               (Obs.Critpath.to_json ?op:op_filter ~top anatomy))
        else
          Format.printf "@[<v>%a@]@."
            (fun ppf -> Obs.Critpath.pp ?op:op_filter ~top ppf)
            anatomy;
        if not anatomy.Obs.Critpath.all_conserved then begin
          prerr_endline "cedar: phase conservation violated (trace malformed)";
          exit 1
        end)

(* Systematic crash-injection sweep over the server path. Runs on fresh
   in-memory volumes (the deterministic 2-client reference workload is
   replayed once per crash coordinate), so there is no IMAGE argument
   and nothing on disk is touched. *)
let cmd_faultsweep clients tear max_forces scavenge wrap json =
  let module F = Cedar_server.Faultsweep in
  if clients < 1 then fail "--clients must be at least 1 (got %d)" clients;
  if clients > 99 then fail "--clients is capped at 99 (got %d)" clients;
  (match max_forces with
  | Some k when k <= 0 -> fail "--max-forces must be positive (got %d)" k
  | Some _ | None -> ());
  let tears =
    match tear with
    | "all" -> F.all_tears
    | t -> (
      match F.tear_of_name t with
      | Some m -> [ m ]
      | None -> fail "unknown tear mode %S (none|zero|garbage|damage|all)" t)
  in
  let workload = if wrap then F.Wrap F.default_wrap_spec else F.Reference in
  let s = F.sweep { F.clients; tears; max_forces; scavenge; workload } in
  if json then print_endline (Obs.Jsonb.to_string_pretty (F.summary_json s))
  else Format.printf "%a@." F.pp s;
  if s.F.sw_violations <> [] then exit 1

(* Log-wrap endurance on a fresh in-memory volume: churn until the log
   has wrapped, verify against the version-aware oracle, then prove a
   clean shutdown + reboot replays nothing and changes nothing. *)
let cmd_churn clients ops slots seed force_every tiny min_wraps json =
  let module E = Cedar_server.Endurance in
  let module C = Cedar_workload.Concurrent in
  if clients < 1 then fail "--clients must be at least 1 (got %d)" clients;
  if clients > 99 then fail "--clients is capped at 99 (got %d)" clients;
  if ops < 1 then fail "--ops must be at least 1 (got %d)" ops;
  if slots < 1 then fail "--slots must be at least 1 (got %d)" slots;
  if min_wraps < 0 then fail "--min-wraps must be non-negative (got %d)" min_wraps;
  let spec =
    {
      C.default_churn with
      C.churn_ops = ops;
      slots;
      churn_seed = seed;
      force_every;
    }
  in
  let geom = if tiny then Geometry.tiny_test else Geometry.small_test in
  let r = E.run ~geom { E.clients; spec } in
  if json then print_endline (Obs.Jsonb.to_string_pretty (E.report_json r))
  else Format.printf "%a@." E.pp r;
  if r.E.e_third_entries < 3 * min_wraps then begin
    Format.eprintf "cedar: log wrapped %.1f time(s), wanted %d@."
      (float_of_int r.E.e_third_entries /. 3.0)
      min_wraps;
    exit 1
  end;
  if not (E.clean r) then exit 1

(* Decode the on-disk flight recorder WITHOUT booting: no recovery runs,
   so this is the pre-crash view — what the system believed at its last
   group-commit force. Only the boot page is trusted (for the layout
   parameters); the black-box region itself is CRC-guarded. *)
let cmd_blackbox path json limit =
  guard @@ fun () ->
  (match limit with
  | Some n when n <= 0 -> fail "--limit must be a positive event count (got %d)" n
  | Some _ | None -> ());
  let device = load_device path in
  match Cedar_fsd.Boot_page.read device with
  | None -> fail "%s is not an FSD volume (no boot page)" path
  | Some bp ->
    let geom = Device.geometry device in
    let p =
      {
        (Cedar_fsd.Params.for_geometry geom) with
        Cedar_fsd.Params.fnt_page_sectors = bp.Cedar_fsd.Boot_page.fnt_page_sectors;
        fnt_pages = bp.Cedar_fsd.Boot_page.fnt_pages;
        log_sectors = bp.Cedar_fsd.Boot_page.log_sectors;
        log_vam = bp.Cedar_fsd.Boot_page.log_vam;
        track_tolerant_log = bp.Cedar_fsd.Boot_page.track_tolerant_log;
      }
    in
    let layout = Cedar_fsd.Layout.compute geom p in
    (match Cedar_fsd.Blackbox.read device layout with
    | Error m -> fail "%s" m
    | Ok cp ->
      if json then
        print_endline (Obs.Jsonb.to_string_pretty (Cedar_fsd.Blackbox.to_json ?limit cp))
      else Format.printf "%a" (Cedar_fsd.Blackbox.pp ?limit) cp)

(* ------------------------------------------------------------------ *)
(* Cmdliner plumbing                                                   *)

open Cmdliner

let img = Arg.(required & pos 0 (some string) None & info [] ~docv:"IMAGE")
let name_arg = Arg.(required & pos 1 (some string) None & info [] ~docv:"NAME")

let mkfs_cmd =
  let fs_kind =
    Arg.(value & opt string "fsd" & info [ "fs" ] ~docv:"FS" ~doc:"fsd or cfs")
  in
  let geom =
    Arg.(value & opt string "t300" & info [ "geometry" ] ~docv:"G" ~doc:"t300 or small")
  in
  let log_vam =
    Arg.(value & flag & info [ "log-vam" ] ~doc:"enable the VAM-logging extension")
  in
  let track_tolerant =
    Arg.(
      value & flag
      & info [ "track-tolerant" ] ~doc:"log records survive whole-track losses")
  in
  Cmd.v (Cmd.info "mkfs" ~doc:"create a fresh volume image")
    Term.(const cmd_mkfs $ img $ fs_kind $ geom $ log_vam $ track_tolerant)

let put_cmd =
  Cmd.v (Cmd.info "put" ~doc:"store stdin as a new version of NAME")
    Term.(const cmd_put $ img $ name_arg)

let get_cmd =
  Cmd.v (Cmd.info "get" ~doc:"write the newest version of NAME to stdout")
    Term.(const cmd_get $ img $ name_arg)

let ls_cmd =
  let prefix = Arg.(value & pos 1 string "" & info [] ~docv:"PREFIX") in
  Cmd.v (Cmd.info "ls" ~doc:"list files") Term.(const cmd_ls $ img $ prefix)

let rm_cmd =
  Cmd.v (Cmd.info "rm" ~doc:"delete the newest version of NAME")
    Term.(const cmd_rm $ img $ name_arg)

let info_cmd =
  Cmd.v (Cmd.info "info" ~doc:"volume summary and structural check")
    Term.(const cmd_info $ img)

let crash_cmd =
  Cmd.v (Cmd.info "crash" ~doc:"leave the volume in a crashed state")
    Term.(const cmd_crash $ img)

let inspect_cmd =
  Cmd.v
    (Cmd.info "inspect" ~doc:"dump the volume's structures (log, name table, free map)")
    Term.(const cmd_inspect $ img)

let recover_cmd =
  Cmd.v (Cmd.info "recover" ~doc:"run crash recovery (FSD log replay / CFS scavenge)")
    Term.(const cmd_recover $ img)

let scavenge_cmd =
  Cmd.v
    (Cmd.info "scavenge"
       ~doc:"rebuild volume metadata from leader pages (survives total name-table loss)")
    Term.(const cmd_scavenge $ img)

let stats_cmd =
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"emit one JSON object instead of tables")
  in
  let watch =
    Arg.(
      value & flag
      & info [ "watch" ]
          ~doc:
            "render a live telemetry frame per monitor sample while the \
             workload runs (plain text on a pipe; with --json, frames go to \
             stderr)")
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "run the fixed scripted workload with tracing on and print per-op I/O \
          and log-activity tables (the image is not modified)")
    Term.(const cmd_stats $ img $ json $ watch)

let trace_cmd =
  let limit =
    Arg.(
      value
      & opt (some int) None
      & info [ "limit" ] ~docv:"N" ~doc:"print only the last $(docv) entries")
  in
  let chrome =
    Arg.(
      value
      & opt (some string) None
      & info [ "chrome" ] ~docv:"PATH"
          ~doc:
            "write the trace as Chrome trace-event JSON to $(docv) (viewable in \
             about://tracing or Perfetto) instead of dumping entries")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "boot with tracing enabled (capturing recovery events), run the \
          scripted workload and dump the event trace")
    Term.(const cmd_trace $ img $ limit $ chrome)

let profile_cmd =
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"emit one JSON object instead of tables")
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "run the scripted workload with tracing on and print per-op latency \
          distributions, ops-per-force and force-interval histograms, and the \
          log-third occupancy timeline (the image is not modified)")
    Term.(const cmd_profile $ img $ json)

let serve_cmd =
  let serve_img =
    (* Optional here only: --volumes N>1 serves fresh in-memory volumes
       and takes no image (a single image holds a single volume). *)
    Arg.(value & pos 0 (some string) None & info [] ~docv:"IMAGE")
  in
  let volumes =
    Arg.(
      value & opt int 1
      & info [ "volumes" ] ~docv:"V"
          ~doc:
            "serve $(docv) independent fresh in-memory volumes behind the \
             sharded front end (per-volume logs and group-commit batchers; \
             file names route by a stable hash of their first path \
             component). Mutually exclusive with IMAGE; the default 1 \
             serves the given IMAGE exactly as before")
  in
  let clients =
    Arg.(
      value & opt int 2
      & info [ "clients" ] ~docv:"N" ~doc:"number of concurrent client sessions")
  in
  let script =
    Arg.(
      value
      & opt (some string) None
      & info [ "script" ] ~docv:"FILE"
          ~doc:
            "replay $(docv) in every session (one step per line: think US, \
             create NAME BYTES, open NAME, read NAME, read-page NAME PAGE, \
             delete NAME, list PREFIX, force; {c} in names becomes the \
             session's directory, {v} a directory routing to volume \
             client mod V). Default: the per-client make/do workload")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"S" ~doc:"workload seed")
  in
  let think =
    Arg.(
      value & opt int 50_000
      & info [ "think" ] ~docv:"US"
          ~doc:"mean per-step client think time in simulated microseconds")
  in
  let rounds =
    Arg.(
      value & opt int 2
      & info [ "rounds" ] ~docv:"R" ~doc:"make/do build passes per client")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"emit the deterministic JSON report")
  in
  let watch =
    Arg.(
      value & flag
      & info [ "watch" ]
          ~doc:
            "render a live telemetry dashboard (one frame per \
             monitor sample: counter deltas, saturation gauges, commit-wait \
             percentiles, sparklines). Plain text on a pipe — no escape \
             codes; with --json, frames go to stderr")
  in
  let open_loop =
    Arg.(
      value
      & opt (some float) None
      & info [ "open-loop" ] ~docv:"RATE"
          ~doc:
            "replace the closed-loop make/do workload with deterministic \
             open-loop traffic: Poisson arrivals at $(docv) ops/s aggregate, \
             pinned to the virtual clock (a session behind schedule issues \
             immediately), heavy-tailed create sizes and zipfian hot-directory \
             names")
  in
  let open_ops =
    Arg.(
      value
      & opt int
          Cedar_workload.Concurrent.default_open.Cedar_workload.Concurrent.ol_ops
      & info [ "ops" ] ~docv:"N" ~doc:"total open-loop arrivals across all clients")
  in
  let timeline =
    Arg.(
      value
      & opt (some string) None
      & info [ "timeline" ] ~docv:"PATH"
          ~doc:"write the telemetry timeline as JSON to $(docv) (- for stdout)")
  in
  let timeline_csv =
    Arg.(
      value
      & opt (some string) None
      & info [ "timeline-csv" ] ~docv:"PATH"
          ~doc:"write the telemetry timeline as CSV to $(docv) (- for stdout)")
  in
  let disk_sched =
    Arg.(
      value & opt string "fifo"
      & info [ "disk-sched" ] ~docv:"POLICY"
          ~doc:
            "disk request scheduling policy when --disk-qdepth enables the \
             queue: fifo (arrival order), elevator (sweeping arm) or sstf \
             (shortest seek first, with an aging bound)")
  in
  let disk_qdepth =
    Arg.(
      value & opt int 0
      & info [ "disk-qdepth" ] ~docv:"D"
          ~doc:
            "queue up to $(docv) data-path disk requests per device and let \
             --disk-sched pick the service order (seek time is charged in \
             service order). 0 (default) keeps the synchronous data path; \
             depth 1 queues but cannot reorder, so it behaves identically \
             to 0")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "run N concurrent client sessions against the volume (or, with \
          --volumes V, against V sharded in-memory volumes) under the \
          deterministic cooperative scheduler, batching their transactions \
          into per-volume group-commit forces (the image is not modified; \
          same-seed runs produce byte-identical reports)")
    Term.(
      const cmd_serve $ serve_img $ volumes $ clients $ script $ seed $ think
      $ rounds $ json $ watch $ open_loop $ open_ops $ timeline $ timeline_csv
      $ disk_sched $ disk_qdepth)

let why_cmd =
  let clients =
    Arg.(
      value & opt int 2
      & info [ "clients" ] ~docv:"N" ~doc:"number of concurrent client sessions")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"S" ~doc:"workload seed")
  in
  let think =
    Arg.(
      value & opt int 50_000
      & info [ "think" ] ~docv:"US"
          ~doc:"mean per-step client think time in simulated microseconds")
  in
  let rounds =
    Arg.(
      value & opt int 2
      & info [ "rounds" ] ~docv:"R" ~doc:"make/do build passes per client")
  in
  let open_loop =
    Arg.(
      value
      & opt (some float) None
      & info [ "open-loop" ] ~docv:"RATE"
          ~doc:
            "drive deterministic open-loop Poisson traffic at $(docv) ops/s \
             aggregate instead of the closed-loop make/do workload")
  in
  let open_ops =
    Arg.(
      value
      & opt int
          Cedar_workload.Concurrent.default_open.Cedar_workload.Concurrent.ol_ops
      & info [ "ops" ] ~docv:"N"
          ~doc:
            "total open-loop arrivals (with --open-loop) or churn steps per \
             client (with --churn)")
  in
  let churn =
    Arg.(
      value & flag
      & info [ "churn" ]
          ~doc:"drive the log-wrap churn workload instead of make/do")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"emit the deterministic JSON anatomy")
  in
  let op_filter =
    Arg.(
      value
      & opt (some string) None
      & info [ "op" ] ~docv:"TYPE"
          ~doc:
            "restrict the report to one op kind (create, open, read, \
             read_page, delete, list, force)")
  in
  let top =
    Arg.(
      value & opt int 5
      & info [ "top" ] ~docv:"K" ~doc:"show the $(docv) slowest ops in full")
  in
  let chrome =
    Arg.(
      value
      & opt (some string) None
      & info [ "chrome" ] ~docv:"PATH"
          ~doc:
            "also write the traced run as Chrome trace-event JSON — per-session \
             tracks with queue/admission phase slices nested around each \
             executing span — for about://tracing or Perfetto")
  in
  Cmd.v
    (Cmd.info "why"
       ~doc:
         "run a server workload with lifecycle tracing on and explain where \
          each op's latency went: per-op phase vectors (queue, admission \
          retries, execute with its device seek/transfer split, log append, \
          parked-for-force) that sum exactly to end-to-end latency, per-kind \
          p50/p90/p99 and the phase to blame for the p99 tail (the image is \
          not modified; exits non-zero if conservation is violated)")
    Term.(
      const cmd_why $ img $ clients $ seed $ think $ rounds $ open_loop
      $ open_ops $ churn $ json $ op_filter $ top $ chrome)

let churn_cmd =
  let clients =
    Arg.(
      value & opt int 2
      & info [ "clients" ] ~docv:"N" ~doc:"number of concurrent churn sessions")
  in
  let ops =
    Arg.(
      value
      & opt int Cedar_workload.Concurrent.default_churn.Cedar_workload.Concurrent.churn_ops
      & info [ "ops" ] ~docv:"N" ~doc:"churn steps per client")
  in
  let slots =
    Arg.(
      value
      & opt int Cedar_workload.Concurrent.default_churn.Cedar_workload.Concurrent.slots
      & info [ "slots" ] ~docv:"N"
          ~doc:"distinct names in each client's working set")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"S" ~doc:"workload seed")
  in
  let force_every =
    Arg.(
      value
      & opt int
          Cedar_workload.Concurrent.default_churn.Cedar_workload.Concurrent.force_every
      & info [ "force-every" ] ~docv:"N"
          ~doc:"explicit log force every $(docv) mutations (0 disables)")
  in
  let tiny =
    Arg.(
      value & flag
      & info [ "tiny" ]
          ~doc:
            "run on the tiny test geometry, whose 37-sector log thirds wrap \
             orders of magnitude faster for the same op count")
  in
  let min_wraps =
    Arg.(
      value & opt int 1
      & info [ "min-wraps" ] ~docv:"W"
          ~doc:"fail unless the log wrapped at least $(docv) full times")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"emit the deterministic JSON report")
  in
  Cmd.v
    (Cmd.info "churn"
       ~doc:
         "run the log-wrap churn workload (create/overwrite/delete over a \
          small working set) through the concurrent server on a fresh \
          in-memory volume until the log has wrapped, check the recovered \
          namespace against the version-aware oracle, then prove a clean \
          shutdown + reboot replays zero records and changes nothing; exits \
          non-zero on any violation or if the log wrapped fewer than \
          --min-wraps times")
    Term.(
      const cmd_churn $ clients $ ops $ slots $ seed $ force_every $ tiny
      $ min_wraps $ json)

let faultsweep_cmd =
  let clients =
    Arg.(
      value & opt int 2
      & info [ "clients" ] ~docv:"N" ~doc:"concurrent sessions in the reference workload")
  in
  let tear =
    Arg.(
      value & opt string "all"
      & info [ "tear" ] ~docv:"MODE"
          ~doc:
            "how the interrupted sector is left behind: none (write never \
             starts), zero, garbage, damage (unreadable), or all")
  in
  let max_forces =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-forces" ] ~docv:"K"
          ~doc:"sweep only the first $(docv) force intervals")
  in
  let scavenge =
    Arg.(
      value & flag
      & info [ "scavenge" ]
          ~doc:
            "destroy both name-table copies after every crash, forcing \
             recovery through the scavenger of last resort")
  in
  let wrap =
    Arg.(
      value & flag
      & info [ "wrap" ]
          ~doc:
            "replay the log-wrap churn workload on a tiny volume instead of \
             the reference script, and sweep only the force intervals in \
             the wrap window (third entries and their neighbours) — crashes \
             land during home-write bursts, the reclamation pointer rewrite, \
             and the appends on each side of the wrap")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"emit the deterministic JSON summary")
  in
  Cmd.v
    (Cmd.info "faultsweep"
       ~doc:
         "crash the multi-client server at every sector write of every \
          group-commit force interval (optionally tearing the interrupted \
          sector), reboot each time, and check the recovery contract: acked \
          mutations byte-exact, unacked wholly absent, VAM consistent with \
          the name table, flight recorder decodable, and a clean reboot \
          after recovery replaying nothing. Runs on fresh in-memory \
          volumes; exits non-zero on any violation")
    Term.(
      const cmd_faultsweep $ clients $ tear $ max_forces $ scavenge $ wrap $ json)

let blackbox_cmd =
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"emit one JSON object")
  in
  let limit =
    Arg.(
      value
      & opt (some int) None
      & info [ "limit" ] ~docv:"N" ~doc:"show only the last $(docv) events")
  in
  Cmd.v
    (Cmd.info "blackbox"
       ~doc:
         "decode the on-disk flight recorder without booting: the last trace \
          events, the in-flight operations, and the log/VAM state the system \
          believed it had at its final checkpoint before a crash")
    Term.(const cmd_blackbox $ img $ json $ limit)

let () =
  let doc = "simulated Cedar file-system volumes (Hagmann, SOSP 1987)" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "cedar" ~doc)
          [
            mkfs_cmd;
            put_cmd;
            get_cmd;
            ls_cmd;
            rm_cmd;
            info_cmd;
            inspect_cmd;
            crash_cmd;
            recover_cmd;
            scavenge_cmd;
            stats_cmd;
            trace_cmd;
            profile_cmd;
            serve_cmd;
            why_cmd;
            churn_cmd;
            faultsweep_cmd;
            blackbox_cmd;
          ]))
