(* Multi-volume scale-out sweep: N make/do clients sharded across V
   independent volumes (one device, one log, one group-commit batcher
   each) under the single cooperative scheduler.

   The single-volume ops/force curve flattens with client count (see
   BENCH_GROUPCOMMIT.json: 7.1 at N=16 -> 8.7 at N=32) because one FNT
   and one log serialise every metadata mutation. Sharding removes that
   serialisation: each volume's force rides its own spindle, so forces
   on distinct volumes overlap in simulated time and the system pays
   one force latency per commit window while V forces complete. The
   headline metric is therefore *aggregate acked mutations per
   per-volume log force* — mutations retired per commit window —
   computed as acked * V / total log forces. For V = 1 it reduces to
   the plain ops/force of BENCH_GROUPCOMMIT.json, so the two benches
   share a baseline.

   Workload parity: every row (including V = 1) runs the same
   [Concurrent.makedo_scripts] spec as `bench clients`, wrapped by
   [Concurrent.shard_scripts] so client k's namespace lives on volume
   k mod V (V = 1 gets the constant "v0/" prefix — same shape, one
   shard).

   Everything is simulated and seeded; BENCH_VOLUMES.json is
   byte-stable and diffed like a snapshot test. The two acceptance
   shape checks — 4 volumes >= 2x the single-volume figure at N = 32,
   and monotone growth in volume count at N = 64 — are recorded in the
   JSON and enforced here (exit 1 on violation). *)

module S = Cedar_server.Server
module V = Cedar_volumes.Volume_set
module C = Cedar_workload.Concurrent
module J = Cedar_obs.Jsonb

let volume_counts = [ 1; 2; 4; 8 ]
let client_counts = [ 8; 16; 32; 64 ]
let spec = { C.default_spec with C.modules = 8; rounds = 2; think_us = 50_000 }

type row = { volumes : int; clients : int; r : S.report }

let run_one ~volumes ~clients =
  let clock = Cedar_util.Simclock.create () in
  let vset = V.create_fresh ~geom:Setup.geom ~clock volumes in
  let scripts = C.shard_scripts (C.makedo_scripts spec ~clients) ~volumes in
  let r = S.serve_volumes vset scripts in
  { volumes; clients; r }

(* Mutations retired per commit window: forces on distinct volumes
   overlap on independent spindles, so the per-volume force count is
   the number of windows the run paid for. *)
let agg_ops_per_force row =
  if row.r.S.log_forces = 0 then 0.
  else
    float_of_int (row.r.S.mutations_acked * row.volumes)
    /. float_of_int row.r.S.log_forces

let throughput_ops_s row =
  if row.r.S.duration_us = 0 then 0.
  else
    float_of_int row.r.S.total_ops
    /. Cedar_util.Simclock.s_of_us row.r.S.duration_us

let row_json row =
  let r = row.r in
  J.Obj
    [
      ("volumes", J.Int row.volumes);
      ("clients", J.Int row.clients);
      ("duration_us", J.Int r.S.duration_us);
      ("total_ops", J.Int r.S.total_ops);
      ("mutations_acked", J.Int r.S.mutations_acked);
      ("log_forces", J.Int r.S.log_forces);
      ("server_forces", J.Int r.S.server_forces);
      ( "forces_per_volume",
        J.Float (float_of_int r.S.log_forces /. float_of_int row.volumes) );
      ("agg_ops_per_force", J.Float (agg_ops_per_force row));
      ("ops_per_force_pooled", J.Float r.S.ops_per_force);
      ("throughput_ops_s", J.Float (throughput_ops_s row));
      ("commit_wait_p50_us", J.Float r.S.wait_p50_us);
      ("commit_wait_p99_us", J.Float r.S.wait_p99_us);
      ("batch_mean", J.Float r.S.batch_mean);
      ("rejected", J.Int r.S.total_rejected);
      ("dropped", J.Int r.S.total_dropped);
      ("errors", J.Int r.S.total_errors);
    ]

let find rows ~volumes ~clients =
  List.find (fun row -> row.volumes = volumes && row.clients = clients) rows

let default_out = "BENCH_VOLUMES.json"

let run ?out () =
  let out = match out with Some p -> p | None -> default_out in
  Setup.hr
    "multi-volume scale-out: N make/do clients sharded over V volumes";
  Printf.printf "  %7s %7s %9s %9s %9s %12s %11s %10s\n" "volumes" "clients"
    "acked" "forces" "forces/V" "agg op/force" "ops/s(sim)" "batch avg";
  let rows =
    List.concat_map
      (fun clients ->
        List.map
          (fun volumes ->
            let row = run_one ~volumes ~clients in
            let r = row.r in
            Printf.printf "  %7d %7d %9d %9d %9.1f %12.2f %11.1f %10.1f\n"
              volumes clients r.S.mutations_acked r.S.log_forces
              (float_of_int r.S.log_forces /. float_of_int volumes)
              (agg_ops_per_force row) (throughput_ops_s row) r.S.batch_mean;
            row)
          volume_counts)
      client_counts
  in
  (* Shape check 1: at N = 32 clients, four volumes must at least double
     the single-volume amortisation (whose figure tracks the 8.x of
     BENCH_GROUPCOMMIT.json). *)
  let v1_32 = agg_ops_per_force (find rows ~volumes:1 ~clients:32) in
  let v4_32 = agg_ops_per_force (find rows ~volumes:4 ~clients:32) in
  let v4_over_v1 = if v1_32 = 0. then 0. else v4_32 /. v1_32 in
  let doubled = v4_over_v1 >= 2.0 in
  (* Shape check 2: at N = 64 clients the aggregate curve must not
     decline anywhere as volumes are added (ties allowed — two volume
     counts can land on the same window occupancy). *)
  let at_64 =
    List.map (fun v -> agg_ops_per_force (find rows ~volumes:v ~clients:64))
      volume_counts
  in
  let rec non_decreasing = function
    | a :: b :: rest -> a <= b && non_decreasing (b :: rest)
    | _ -> true
  in
  let monotone_64 = non_decreasing at_64 in
  (* Context check (recorded, not fatal): the single-volume curve has
     flattened — doubling the clients from 32 to 64 buys little. *)
  let v1_64 = agg_ops_per_force (find rows ~volumes:1 ~clients:64) in
  let v1_flat = v1_64 <= 1.25 *. v1_32 in
  Printf.printf "  shape: v4/v1 at N=32 = %.2f (>= 2.0: %b)\n" v4_over_v1
    doubled;
  Printf.printf "  shape: monotone in volumes at N=64: %b [%s]\n" monotone_64
    (String.concat " " (List.map (Printf.sprintf "%.2f") at_64));
  Printf.printf "  shape: single-volume flattens 32->64: %b (%.2f -> %.2f)\n"
    v1_flat v1_32 v1_64;
  let obj =
    J.Obj
      [
        ("bench", J.Str "multi-volume-scale-out");
        ("geometry", J.Str (Format.asprintf "%a" Cedar_disk.Geometry.pp Setup.geom));
        ( "workload",
          J.Obj
            [
              ("kind", J.Str "makedo-per-client-sharded");
              ("modules", J.Int spec.C.modules);
              ("deps_per_module", J.Int spec.C.deps_per_module);
              ("rounds", J.Int spec.C.rounds);
              ("source_bytes", J.Int spec.C.source_bytes);
              ("think_us", J.Int spec.C.think_us);
              ("seed", J.Int spec.C.seed);
            ] );
        ( "metric",
          J.Str
            "agg_ops_per_force = mutations_acked * volumes / log_forces \
             (mutations per commit window; per-volume forces overlap on \
             independent spindles)" );
        ( "shape",
          J.Obj
            [
              ("v4_over_v1_at_32", J.Float v4_over_v1);
              ("v4_ge_2x_v1_at_32", J.Bool doubled);
              ("monotone_in_volumes_at_64", J.Bool monotone_64);
              ("single_volume_flattens", J.Bool v1_flat);
            ] );
        ("rows", J.Arr (List.map row_json rows));
      ]
  in
  let oc = open_out out in
  output_string oc (J.to_string_pretty obj);
  output_char oc '\n';
  close_out oc;
  Printf.printf "  wrote %s\n" out;
  if not (doubled && monotone_64) then begin
    prerr_endline "bench volumes: scale-out shape check FAILED";
    exit 1
  end
