(* The saturation-knee sweep (bench timeline).

   Drives the deterministic open-loop workload (Poisson arrivals pinned
   to the virtual clock, heavy-tailed sizes, zipfian names) through the
   concurrent server at a ladder of offered rates, with the telemetry
   monitor sampling every 100 ms of virtual time. Each rung gets a
   fresh small-geometry volume, so rungs are independent and the whole
   sweep is reproducible from the seed.

   What BENCH_TIMELINE.json asserts (the regression surface):

   - device busy fraction and commit-wait p99 rise monotonically with
     offered load (within a small tolerance for the flat region);
   - achieved throughput tracks offered load below the knee and flattens
     above it;
   - admission rejects are zero at the lowest rung and non-zero at the
     highest (the queue cap only matters past saturation);
   - the lowest rung, run twice, produces byte-identical timelines
     (the monitor's determinism contract, end to end).

   Each rung's row embeds a compact per-sample track of the saturation
   gauges; the full timeline JSON would dwarf the repo, and the derived
   gauges are what the knee shows up in. *)

open Cedar_disk
module C = Cedar_workload.Concurrent
module S = Cedar_server.Server
module Fsd = Cedar_fsd.Fsd
module Mon = Cedar_obs.Monitor
module Timeline = Cedar_obs.Timeline
module J = Cedar_obs.Jsonb

let geom = Geometry.small_test
let clients = 16
let arrivals = 240
let rates = [ 4.0; 8.0; 16.0; 32.0; 64.0 ]

(* Past the knee the parked queue must actually fill: the cap has to sit
   below what a force interval's worth of ops can park (each op holds
   the device ~20 ms, so ~5 can park per 100 ms interval) or Queue_full
   can never fire. *)
let config = { S.default_config with S.queue_cap = 4 }

(* The half-second commit interval of §5.4 would pin every commit wait
   to ~500 ms and hide the knee in the wait tail behind the timer; for
   this sweep the interval is shortened so that queueing — a late force
   behind in-flight ops, longer forces with fuller batches — dominates
   p99 instead. *)
let commit_interval_us = 100_000

let params =
  { (Cedar_fsd.Params.for_geometry geom) with
    Cedar_fsd.Params.commit_interval_us }

type rung = {
  rate : float;
  report : S.report;
  samples : Mon.sample list;
  timeline_json : string;  (** canonical bytes, for the determinism check *)
}

let run_rung rate =
  let clock = Cedar_util.Simclock.create () in
  let device = Device.create ~clock geom in
  Fsd.format device params;
  let fs, _report = Fsd.boot ~params device in
  let m = Fsd.enable_monitor fs in
  let scripts =
    C.open_loop
      { C.default_open with C.ol_rate_per_s = rate; ol_ops = arrivals }
      ~clients
  in
  let report = S.serve ~config fs scripts in
  let samples = Mon.samples m in
  {
    rate;
    report;
    samples;
    timeline_json = J.to_string (Timeline.to_json samples);
  }

let derived name (s : Mon.sample) =
  Option.value ~default:0.0 (List.assoc_opt name s.Mon.derived)

let mean_derived name samples =
  match samples with
  | [] -> 0.0
  | _ ->
    List.fold_left (fun acc s -> acc +. derived name s) 0.0 samples
    /. float_of_int (List.length samples)

let max_derived name samples =
  List.fold_left (fun acc s -> Stdlib.max acc (derived name s)) 0.0 samples

let achieved_ops_s r =
  float_of_int r.S.total_ops *. 1e6 /. float_of_int (Stdlib.max 1 r.S.duration_us)

(* Committed snapshots stay diffable when they stay small: keep every
   stride-th sample, at most [cap] points per rung. *)
let downsample cap samples =
  let n = List.length samples in
  let stride = Stdlib.max 1 ((n + cap - 1) / cap) in
  List.filteri (fun i _ -> i mod stride = 0) samples

(* One compact track point per sample: just the knee-relevant gauges. *)
let track_json (s : Mon.sample) =
  J.Obj
    [
      ("at_us", J.Int s.Mon.at_us);
      ("busy", J.Float (derived "sat.device_busy" s));
      ("fill", J.Float (derived "sat.log_third_fill" s));
      ("queue", J.Float (derived "sat.queue_depth" s));
      ("reject_s", J.Float (derived "sat.reject_rate_s" s));
      ( "wait_p99_us",
        match List.assoc_opt "server.commit_wait_us" s.Mon.dists with
        | Some w -> J.Float w.Mon.w_p99
        | None -> J.Float 0.0 );
    ]

let rung_json r =
  J.Obj
    [
      ("offered_ops_s", J.Float r.rate);
      ("achieved_ops_s", J.Float (achieved_ops_s r.report));
      ("duration_us", J.Int r.report.S.duration_us);
      ("total_ops", J.Int r.report.S.total_ops);
      ("mutations_acked", J.Int r.report.S.mutations_acked);
      ("log_forces", J.Int r.report.S.log_forces);
      ("ops_per_force", J.Float r.report.S.ops_per_force);
      ("rejected", J.Int r.report.S.total_rejected);
      ("retries", J.Int r.report.S.total_retries);
      ("dropped", J.Int r.report.S.total_dropped);
      ("wait_p50_us", J.Float r.report.S.wait_p50_us);
      ("wait_p99_us", J.Float r.report.S.wait_p99_us);
      ("busy_mean", J.Float (mean_derived "sat.device_busy" r.samples));
      ("busy_max", J.Float (max_derived "sat.device_busy" r.samples));
      ("fill_max", J.Float (max_derived "sat.log_third_fill" r.samples));
      ("samples", J.Int (List.length r.samples));
      ("track", J.Arr (List.map track_json (downsample 32 r.samples)));
    ]

(* The knee contract, as named checks so the JSON records exactly which
   (if any) failed. The flat region below the knee can jitter by a few
   percent, hence the tolerances. *)
let checks rungs twice =
  let pairs = List.combine (List.tl rungs) (List.filteri (fun i _ -> i < List.length rungs - 1) rungs) in
  (* Relative tolerance: the rise through the knee is the signal; in
     the saturated plateau the figures are load-independent by design
     (waits bound by force cadence, busy pinned at capacity) and may
     wobble a few percent between rungs. *)
  let monotone name f tol =
    (name, List.for_all (fun (hi, lo) -> f hi >= f lo *. (1.0 -. tol)) pairs)
  in
  let first = List.hd rungs and last = List.hd (List.rev rungs) in
  [
    monotone "busy_monotone" (fun r -> mean_derived "sat.device_busy" r.samples) 0.05;
    monotone "wait_p99_monotone" (fun r -> r.report.S.wait_p99_us) 0.15;
    ("no_rejects_below_knee", first.report.S.total_rejected = 0);
    ("rejects_past_knee", last.report.S.total_rejected > 0);
    ( "throughput_flattens",
      achieved_ops_s last.report < last.rate *. 0.9
      && achieved_ops_s first.report > first.rate *. 0.9 );
    ("deterministic", first.timeline_json = twice.timeline_json);
  ]

let default_out = "BENCH_TIMELINE.json"

let run ?out () =
  let out = match out with Some p -> p | None -> default_out in
  Setup.hr "open-loop saturation sweep (cedar serve --open-loop, telemetry monitor)";
  let rungs = List.map run_rung rates in
  let twice = run_rung (List.hd rates) in
  Printf.printf "  %8s %9s %6s %7s %7s %9s %9s %7s\n" "offered" "achieved"
    "ops" "rejects" "dropped" "busy" "p99(ms)" "samples";
  List.iter
    (fun r ->
      Printf.printf "  %8.1f %9.2f %6d %7d %7d %9.3f %9.1f %7d\n" r.rate
        (achieved_ops_s r.report) r.report.S.total_ops
        r.report.S.total_rejected r.report.S.total_dropped
        (mean_derived "sat.device_busy" r.samples)
        (r.report.S.wait_p99_us /. 1000.)
        (List.length r.samples))
    rungs;
  let cs = checks rungs twice in
  let failed = List.filter (fun (_, ok) -> not ok) cs in
  List.iter (fun (name, _) -> Printf.printf "  WARNING: check failed: %s\n" name) failed;
  if failed = [] then Printf.printf "  all %d knee checks hold\n" (List.length cs);
  let obj =
    J.Obj
      [
        ("bench", J.Str "timeline");
        ("geometry", J.Str "small_test");
        ("clients", J.Int clients);
        ("arrivals", J.Int arrivals);
        ("queue_cap", J.Int config.S.queue_cap);
        ("commit_interval_us", J.Int commit_interval_us);
        ("monitor_interval_us", J.Int params.Cedar_fsd.Params.monitor_interval_us);
        ("checks", J.Obj (List.map (fun (n, ok) -> (n, J.Bool ok)) cs));
        ("checks_failed", J.Int (List.length failed));
        ("rungs", J.Arr (List.map rung_json rungs));
      ]
  in
  let oc = open_out out in
  output_string oc (J.to_string_pretty obj);
  output_char oc '\n';
  close_out oc;
  Printf.printf "  wrote %s\n" out
