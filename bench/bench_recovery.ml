(* Restart time vs live log length (bench recovery).

   The paper's §6 sells recovery as "read the log once, sequentially":
   restart cost must be linear in the amount of live log, not in volume
   size. This bench pins both halves of that claim. Per scale it boots
   a fresh volume with an enlarged log (so even the largest scale stays
   inside one third and nothing is reclaimed early), appends N
   single-record commits (create + explicit force), abandons the handle
   without shutdown — a crash — and reboots with the device trace
   enabled. The trace then gives:

   - the measured replay time and record/page counts, which must grow
     ~linearly across the 1x/10x/100x scales;
   - every Dev_read that landed in the log body, which must touch no
     sector more than once — the single sequential pass. The harness
     hard-fails on a double read; this file IS the assertion.

   Deterministic (simulated clock, fixed workload), so the emitted
   BENCH_RECOVERY.json is byte-stable and committed at the repo root. *)

open Cedar_disk
open Cedar_fsd
module J = Cedar_obs.Jsonb
module Trace = Cedar_obs.Trace

let scales = [ 1; 10; 100 ]

(* Default Trident params hold 400-sector thirds; 100 single-create
   records need more, so grow the log until one third holds the whole
   run. Everything else is stock. *)
let params = { Params.default with Params.log_sectors = (3 * 3200) + 3 }

let content n = Bytes.init n (fun i -> Char.chr (i mod 251))

type row = {
  n : int;  (** records committed before the crash *)
  live_sectors : int;  (** log sectors those records occupy *)
  replayed : int;
  replayed_pages : int;
  replay_us : int;
  total_us : int;
  body_reads : int;  (** distinct log-body sectors read during boot *)
  max_reads : int;  (** worst reads-per-sector — must be <= 1 *)
}

let run_scale n =
  let clock = Cedar_util.Simclock.create () in
  let device = Device.create ~clock Setup.geom in
  Fsd.format device params;
  let fs, _ = Fsd.boot device in
  for i = 0 to n - 1 do
    ignore
      (Fsd.create fs ~name:(Printf.sprintf "rec/f%04d" i) (content 700)
        : Cedar_fsbase.Fs_ops.info);
    Fsd.force fs
  done;
  let live_sectors = (Fsd.log_stats fs).Log.total_sectors in
  let layout = Fsd.layout fs in
  (* Crash: abandon the live handle and reboot straight off the device,
     tracing every sector the restart touches. *)
  let tr = Device.trace device in
  Trace.enable tr;
  let _fs2, br = Fsd.boot device in
  Trace.disable tr;
  let body_lo = layout.Layout.log_start + 3 in
  let body_hi = layout.Layout.log_start + layout.Layout.log_sectors in
  let reads = Hashtbl.create 1024 in
  Trace.iter tr (fun e ->
      match e.Trace.event with
      | Trace.Dev_read { sector; count; _ } ->
        for s = sector to sector + count - 1 do
          if s >= body_lo && s < body_hi then
            Hashtbl.replace reads s
              (1 + Option.value (Hashtbl.find_opt reads s) ~default:0)
        done
      | _ -> ());
  let max_reads = Hashtbl.fold (fun _ c m -> max c m) reads 0 in
  {
    n;
    live_sectors;
    replayed = br.Fsd.replayed_records;
    replayed_pages = br.Fsd.replayed_pages;
    replay_us = br.Fsd.log_replay_us;
    total_us = br.Fsd.total_us;
    body_reads = Hashtbl.length reads;
    max_reads;
  }

let row_json r =
  J.Obj
    [
      ("records", J.Int r.n);
      ("live_sectors", J.Int r.live_sectors);
      ("replayed_records", J.Int r.replayed);
      ("replayed_pages", J.Int r.replayed_pages);
      ("log_replay_us", J.Int r.replay_us);
      ("restart_total_us", J.Int r.total_us);
      ("log_body_sectors_read", J.Int r.body_reads);
      ("max_reads_per_sector", J.Int r.max_reads);
      ( "replay_us_per_record",
        J.Float (float_of_int r.replay_us /. float_of_int (max 1 r.n)) );
    ]

let default_out = "BENCH_RECOVERY.json"

let run ?out () =
  let out = match out with Some p -> p | None -> default_out in
  Setup.hr "restart time vs live log length (single-pass REDO replay)";
  let rows = List.map run_scale scales in
  Printf.printf "  %8s %12s %9s %8s %10s %11s %10s\n" "records" "live-sect"
    "replayed" "pages" "replay-us" "us/record" "max-reads";
  List.iter
    (fun r ->
      Printf.printf "  %8d %12d %9d %8d %10d %11.1f %10d\n" r.n r.live_sectors
        r.replayed r.replayed_pages r.replay_us
        (float_of_int r.replay_us /. float_of_int (max 1 r.n))
        r.max_reads)
    rows;
  List.iter
    (fun r ->
      if r.replayed <> r.n then begin
        Printf.printf
          "  FAIL: %d records committed before the crash but %d replayed\n" r.n
          r.replayed;
        exit 1
      end;
      if r.max_reads > 1 then begin
        Printf.printf
          "  FAIL: a log body sector was read %d times during restart \
           (single-pass contract)\n"
          r.max_reads;
        exit 1
      end)
    rows;
  (* Linearity guard: per-record replay cost must not grow with scale
     (fixed boot costs shrink it instead). A super-linear replay would
     roughly double us/record each decade; 1.5x catches that while
     tolerating noise-free simulated-time quantisation. *)
  (match rows with
  | small :: rest ->
    let per r = float_of_int r.replay_us /. float_of_int (max 1 r.n) in
    List.iter
      (fun r ->
        if per r > 1.5 *. per small then
          Printf.printf
            "  WARNING: replay us/record grew from %.1f (n=%d) to %.1f (n=%d)\n"
            (per small) small.n (per r) r.n)
      rest
  | [] -> ());
  let obj =
    J.Obj
      [
        ("bench", J.Str "recovery-restart");
        ("geometry", J.Str (Format.asprintf "%a" Geometry.pp Setup.geom));
        ("log_sectors", J.Int params.Params.log_sectors);
        ("single_pass", J.Bool true);
        ("rows", J.Arr (List.map row_json rows));
      ]
  in
  let oc = open_out out in
  output_string oc (J.to_string_pretty obj);
  output_char oc '\n';
  close_out oc;
  Printf.printf "  wrote %s\n" out
