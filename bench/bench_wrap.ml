(* Log-wrap endurance and the wrap-window crash sweep (bench wrap).

   Two halves, both deterministic and emitted to BENCH_WRAP.json:

   - endurance rows: the churn workload through the concurrent server
     on the small and tiny geometries, self-verified against the
     version-aware oracle, with wrap counts, background home-write
     bursts, reclaim stalls, and the zero-replay clean reboot;
   - sweep rows: the wrap-mode crash sweep (crashes planted only inside
     the wrap window — third entries and their neighbours) once per
     tear mode on the tiny geometry, which must report zero
     recovery-contract violations.

   The violation counters in the JSON are the regression surface: any
   non-zero value is a recovery bug, and the harness warns loudly. *)

open Cedar_disk
module E = Cedar_server.Endurance
module F = Cedar_server.Faultsweep
module J = Cedar_obs.Jsonb

let endurance_rows () =
  List.map
    (fun (label, geom) ->
      (label, E.run ~geom E.default_cfg))
    [ ("small_test", Geometry.small_test); ("tiny_test", Geometry.tiny_test) ]

let sweep_rows () =
  List.map
    (fun tear ->
      let cfg =
        {
          F.default_cfg with
          F.tears = [ tear ];
          workload = F.Wrap F.default_wrap_spec;
        }
      in
      (F.tear_name tear, F.sweep cfg))
    F.all_tears

let endurance_json (label, r) =
  J.Obj
    [
      ("geometry", J.Str label);
      ("mutations_acked", J.Int r.E.e_report.Cedar_server.Server.mutations_acked);
      ("log_records", J.Int r.E.e_log_records);
      ("third_entries", J.Int r.E.e_third_entries);
      ("home_write_bursts", J.Int r.E.e_home_write_bursts);
      ("reclaim_stalls", J.Int r.E.e_reclaim_stalls);
      ("fnt_home_writes", J.Int r.E.e_fnt_home_writes);
      ("replayed_after_shutdown", J.Int r.E.e_replayed_after_shutdown);
      ("digest_match", J.Bool r.E.e_digest_match);
      ( "violations",
        J.Int
          (List.length r.E.e_violations
          + List.length r.E.e_violations_after_reboot) );
    ]

let sweep_json (label, s) =
  J.Obj
    [
      ("tear", J.Str label);
      ("intervals_swept", J.Int (List.length s.F.sw_intervals));
      ("points", J.Int s.F.sw_points);
      ("runs", J.Int s.F.sw_runs);
      ("recovered_by_replay", J.Int s.F.sw_replay);
      ("recovered_by_twin_repair", J.Int s.F.sw_twin_repair);
      ("recovered_by_scavenge", J.Int s.F.sw_scavenged);
      ("violations", J.Int (List.length s.F.sw_violations));
    ]

let default_out = "BENCH_WRAP.json"

let run ?out () =
  let out = match out with Some p -> p | None -> default_out in
  Setup.hr "log-wrap endurance + wrap-window crash sweep (cedar churn / faultsweep --wrap)";
  let es = endurance_rows () in
  Printf.printf "  %-10s %6s %7s %7s %7s %7s %7s %6s\n" "geometry" "acked"
    "records" "thirds" "bursts" "stalls" "replay" "clean";
  List.iter
    (fun (label, r) ->
      Printf.printf "  %-10s %6d %7d %7d %7d %7d %7d %6s\n" label
        r.E.e_report.Cedar_server.Server.mutations_acked r.E.e_log_records
        r.E.e_third_entries r.E.e_home_write_bursts r.E.e_reclaim_stalls
        r.E.e_replayed_after_shutdown
        (if E.clean r then "yes" else "NO"))
    es;
  let ss = sweep_rows () in
  Printf.printf "  %-9s %9s %7s %6s %7s %12s %10s\n" "tear" "intervals"
    "points" "runs" "replay" "twin-repair" "violations";
  List.iter
    (fun (label, s) ->
      Printf.printf "  %-9s %9d %7d %6d %7d %12d %10d\n" label
        (List.length s.F.sw_intervals)
        s.F.sw_points s.F.sw_runs s.F.sw_replay s.F.sw_twin_repair
        (List.length s.F.sw_violations))
    ss;
  let violations =
    List.fold_left (fun n (_, s) -> n + List.length s.F.sw_violations) 0 ss
    + List.fold_left
        (fun n (_, r) ->
          n
          + List.length r.E.e_violations
          + List.length r.E.e_violations_after_reboot
          + (if r.E.e_digest_match then 0 else 1)
          + if r.E.e_replayed_after_shutdown = 0 then 0 else 1)
        0 es
  in
  if violations > 0 then
    Printf.printf "  WARNING: %d wrap-window contract violations\n" violations;
  let obj =
    J.Obj
      [
        ("bench", J.Str "log-wrap");
        ("violations_total", J.Int violations);
        ("endurance", J.Arr (List.map endurance_json es));
        ("wrap_sweep", J.Arr (List.map sweep_json ss));
      ]
  in
  let oc = open_out out in
  output_string oc (J.to_string_pretty obj);
  output_char oc '\n';
  close_out oc;
  Printf.printf "  wrote %s\n" out
