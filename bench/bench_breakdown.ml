(* The knee-sweep latency breakdown (bench breakdown).

   Re-drives the saturation-knee ladder of bench timeline — same
   geometry, client count, arrival budget, queue cap and shortened
   commit interval — but with lifecycle tracing on, and folds each
   rung's trace through Critpath into conserved per-op phase vectors.
   The artifact this bench exists to pin down is the *blame shift*
   across the knee, Hagmann's §5.4 trade seen per-op:

   - below the knee, a mutation's end-to-end latency is dominated by
     the parked-for-force wait (plus its share of the force's log
     append) — the price of amortising the force over a batch;
   - above the knee, arrivals outrun service, and the same op's latency
     is dominated by queue/admission time before it even executes —
     the price of saturation.

   Every op of every rung must satisfy the conservation invariant
   (queue + admission + execute + append + parked = end - arrived,
   exactly); BENCH_BREAKDOWN.json records that alongside the per-rung
   blame and tail shares as named shape checks. *)

open Cedar_disk
module C = Cedar_workload.Concurrent
module S = Cedar_server.Server
module Fsd = Cedar_fsd.Fsd
module Crit = Cedar_obs.Critpath
module Trace = Cedar_obs.Trace
module J = Cedar_obs.Jsonb

let geom = Geometry.small_test
let clients = 16
let arrivals = 240
let rates = [ 4.0; 8.0; 16.0; 32.0; 64.0 ]
let config = { S.default_config with S.queue_cap = 4 }

(* Unlike bench timeline (which shortens the commit interval to make the
   time demon visible per-sample), this bench keeps the stock 500 ms
   interval: the parked-for-force wait must be long enough to own the
   tail below the knee for the blame shift to be observable. *)
let params = Cedar_fsd.Params.for_geometry geom

type rung = {
  rate : float;
  report : S.report;
  anatomy : Crit.t;
  json : string;  (** canonical why-style bytes, for the determinism check *)
}

let run_rung rate =
  let clock = Cedar_util.Simclock.create () in
  let device = Device.create ~clock geom in
  Fsd.format device params;
  let fs, _report = Fsd.boot ~params device in
  let tr = Fsd.trace fs in
  Trace.enable ~capacity:(1 lsl 20) tr;
  let scripts =
    C.open_loop
      { C.default_open with C.ol_rate_per_s = rate; ol_ops = arrivals }
      ~clients
  in
  let report = S.serve ~config fs scripts in
  Trace.disable tr;
  let anatomy = Crit.fold (Trace.to_list tr) in
  { rate; report; anatomy; json = J.to_string (Crit.to_json anatomy) }

let agg r op = List.find_opt (fun a -> a.Crit.a_op = op) r.anatomy.Crit.aggs

let blame_of r op =
  match agg r op with
  | Some a when a.Crit.a_n > 0 -> Crit.phase_name a.Crit.a_blame
  | Some _ | None -> "-"

let tail_share r op ph =
  match agg r op with
  | Some a -> (
    match List.assoc_opt ph a.Crit.a_tail_share with Some f -> f | None -> 0.0)
  | None -> 0.0

(* The park-side share of a create's tail (parked + its append overlap)
   vs the pre-execute share (queue + admission): the two sides of the
   blame shift, recorded as fractions so the snapshot shows the slide,
   not just the argmax flip. *)
let park_side r = tail_share r "create" Crit.Parked +. tail_share r "create" Crit.Append
let entry_side r = tail_share r "create" Crit.Queue +. tail_share r "create" Crit.Admission

let pct_json (p : Crit.pct) =
  J.Obj
    [
      ("p50", J.Float p.Crit.p50);
      ("p90", J.Float p.Crit.p90);
      ("p99", J.Float p.Crit.p99);
      ("mean", J.Float p.Crit.mean);
    ]

let rung_json r =
  let a = r.anatomy in
  J.Obj
    [
      ("offered_ops_s", J.Float r.rate);
      ("duration_us", J.Int r.report.S.duration_us);
      ("ops", J.Int (List.length a.Crit.ops));
      ("orphans", J.Int a.Crit.orphans);
      ("unfinished", J.Int a.Crit.unfinished);
      ("all_conserved", J.Bool a.Crit.all_conserved);
      ("rejected", J.Int r.report.S.total_rejected);
      ("dropped", J.Int r.report.S.total_dropped);
      ( "kinds",
        J.Obj
          (List.map
             (fun g ->
               ( g.Crit.a_op,
                 J.Obj
                   [
                     ("n", J.Int g.Crit.a_n);
                     ("dropped", J.Int g.Crit.a_dropped);
                     ("e2e_us", pct_json g.Crit.a_e2e);
                     ( "phase_mean_us",
                       J.Obj
                         (List.map
                            (fun (ph, p) ->
                              (Crit.phase_name ph, J.Float p.Crit.mean))
                            g.Crit.a_phase) );
                     ("blame", J.Str (Crit.phase_name g.Crit.a_blame));
                     ("tail_n", J.Int g.Crit.a_tail_n);
                     ( "tail_share",
                       J.Obj
                         (List.map
                            (fun (ph, f) -> (Crit.phase_name ph, J.Float f))
                            g.Crit.a_tail_share) );
                   ] ))
             a.Crit.aggs) );
      ("create_blame", J.Str (blame_of r "create"));
      ("create_tail_park_side", J.Float (park_side r));
      ("create_tail_entry_side", J.Float (entry_side r));
    ]

(* The blame-shift contract, as named checks the snapshot records. *)
let checks rungs twice =
  let first = List.hd rungs and last = List.hd (List.rev rungs) in
  [
    ( "all_ops_conserved",
      List.for_all (fun r -> r.anatomy.Crit.all_conserved) rungs );
    ( "no_orphans",
      List.for_all
        (fun r -> r.anatomy.Crit.orphans = 0 && r.anatomy.Crit.unfinished = 0)
        rungs );
    ( "park_blame_below_knee",
      match blame_of first "create" with "parked" | "append" -> true | _ -> false
    );
    ( "entry_blame_past_knee",
      match blame_of last "create" with "queue" | "admission" -> true | _ -> false
    );
    ( "blame_share_shifts",
      park_side first > entry_side first && entry_side last > park_side last );
    ("deterministic", first.json = twice.json);
  ]

let default_out = "BENCH_BREAKDOWN.json"

let run ?out () =
  let out = match out with Some p -> p | None -> default_out in
  Setup.hr "knee-sweep latency breakdown (cedar why, conserved phase blame)";
  let rungs = List.map run_rung rates in
  let twice = run_rung (List.hd rates) in
  Printf.printf "  %8s %6s %9s %-10s %10s %10s\n" "offered" "ops" "conserved"
    "blame" "park-side" "entry-side";
  List.iter
    (fun r ->
      Printf.printf "  %8.1f %6d %9s %-10s %9.0f%% %9.0f%%\n" r.rate
        (List.length r.anatomy.Crit.ops)
        (if r.anatomy.Crit.all_conserved then "yes" else "NO")
        (blame_of r "create")
        (100.0 *. park_side r)
        (100.0 *. entry_side r))
    rungs;
  let cs = checks rungs twice in
  let failed = List.filter (fun (_, ok) -> not ok) cs in
  List.iter (fun (name, _) -> Printf.printf "  WARNING: check failed: %s\n" name) failed;
  if failed = [] then
    Printf.printf "  all %d blame-shift checks hold\n" (List.length cs);
  let obj =
    J.Obj
      [
        ("bench", J.Str "breakdown");
        ("geometry", J.Str "small_test");
        ("clients", J.Int clients);
        ("arrivals", J.Int arrivals);
        ("queue_cap", J.Int config.S.queue_cap);
        ("commit_interval_us", J.Int params.Cedar_fsd.Params.commit_interval_us);
        ("checks", J.Obj (List.map (fun (n, ok) -> (n, J.Bool ok)) cs));
        ("checks_failed", J.Int (List.length failed));
        ("rungs", J.Arr (List.map rung_json rungs));
      ]
  in
  let oc = open_out out in
  output_string oc (J.to_string_pretty obj);
  output_char oc '\n';
  close_out oc;
  Printf.printf "  wrote %s\n" out
