(* Disk-scheduler sweep (ISSUE 10): a CLIENTS x QUEUE_DEPTH x policy
   matrix over the mixed create/read churn workload. With a real request
   queue the service order is the scheduler's choice, so the questions
   the paper's disk-arm discussion raises become measurable: how much
   aggregate seek time does a reordering policy (elevator, SSTF) save
   over FIFO, and does that show up where clients feel it (p99 op
   latency)?

   Two built-in regression checks ride along:

   - shape: at queue depth >= 4 a reordering policy must beat FIFO on
     both total seek time and p99 latency (the scheduler exists for a
     reason);
   - degeneracy: at depth 1 there is nothing to reorder, so every
     policy's row must be identical to the others and to a run with the
     queue disabled entirely (the depth-1 pin -- queueing is off, the
     synchronous path byte-for-byte).

   Everything is simulated and seeded, so BENCH_QDEPTH.json is
   byte-stable and diffable like a snapshot test. *)

open Cedar_util
open Cedar_disk
module Params = Cedar_fsd.Params
module Fsd = Cedar_fsd.Fsd
module S = Cedar_server.Server
module C = Cedar_workload.Concurrent
module M = Cedar_obs.Metrics
module J = Cedar_obs.Jsonb

let client_counts = [ 4; 8 ]
let depths = [ 1; 4; 8 ]
let policies = [ Device.Fifo; Device.Elevator; Device.Sstf ]

(* Create payloads above [small_file_bytes] (4000) so creates write data
   sectors through the queue rather than riding the log alone; no
   scripted forces, so the only drain barriers are the group commits the
   server itself schedules -- the queue actually fills. *)
let spec =
  {
    C.default_churn with
    C.churn_ops = 150;
    bytes_min = 6_000;
    bytes_max = 20_000;
    churn_think_us = 2_000;
    force_every = 0;
  }

type cell = {
  c_clients : int;
  c_depth : int;  (** 0 = queue disabled (baseline) *)
  c_policy : Device.policy;
  c_r : S.report;
  c_io : Iostats.t;
  c_lat_p50 : float;
  c_lat_p99 : float;
  c_lat_max : float;
}

let pctl st p =
  if Stats.n st = 0 then 0.0 else Stats.percentile st p

let run_cell ~clients ~policy ~depth =
  let clock = Simclock.create () in
  let device = Device.create ~clock Setup.geom in
  let params =
    { Params.default with Params.disk_sched = policy; disk_qdepth = depth }
  in
  Fsd.format device params;
  let fs, _report = Fsd.boot ~params device in
  let scripts = C.churn_scripts spec ~clients in
  let r = S.serve fs scripts in
  let lat =
    match M.read_dist (Device.metrics device) "server.op_latency_us" with
    | Some st -> st
    | None -> Stats.create ()
  in
  {
    c_clients = clients;
    c_depth = depth;
    c_policy = policy;
    c_r = r;
    c_io = Iostats.copy (Device.stats device);
    c_lat_p50 = pctl lat 0.50;
    c_lat_p99 = pctl lat 0.99;
    c_lat_max = pctl lat 1.0;
  }

(* The measured numbers only -- no policy/depth labels -- so depth-1
   rows can be compared for the degeneracy pin by string equality. *)
let measures_json c =
  let r = c.c_r and io = c.c_io in
  J.Obj
    [
      ("duration_us", J.Int r.S.duration_us);
      ("total_ops", J.Int r.S.total_ops);
      ("mutations_acked", J.Int r.S.mutations_acked);
      ("log_forces", J.Int r.S.log_forces);
      ("ios", J.Int io.Iostats.ios);
      ("seeks", J.Int io.Iostats.seeks);
      ("seek_us", J.Int io.Iostats.seek_us);
      ("rotation_us", J.Int io.Iostats.rotation_us);
      ("transfer_us", J.Int io.Iostats.transfer_us);
      ("busy_us", J.Int io.Iostats.busy_us);
      ("op_lat_p50_us", J.Float c.c_lat_p50);
      ("op_lat_p99_us", J.Float c.c_lat_p99);
      ("op_lat_max_us", J.Float c.c_lat_max);
      ("errors", J.Int r.S.total_errors);
    ]

let row_json c =
  J.Obj
    [
      ("clients", J.Int c.c_clients);
      ("depth", J.Int c.c_depth);
      ( "policy",
        J.Str
          (if c.c_depth = 0 then "none"
           else Device.policy_to_string c.c_policy) );
      ("measures", measures_json c);
    ]

let find cells ~clients ~depth ~policy =
  List.find
    (fun c -> c.c_clients = clients && c.c_depth = depth && c.c_policy = policy)
    cells

(* Shape: at depth >= 4 some reordering policy strictly beats FIFO on
   both aggregate seek time and p99 latency, for every client count. *)
let shape_checks cells =
  List.concat_map
    (fun clients ->
      List.filter_map
        (fun depth ->
          if depth < 4 then None
          else begin
            let fifo = find cells ~clients ~depth ~policy:Device.Fifo in
            let elev = find cells ~clients ~depth ~policy:Device.Elevator in
            let sstf = find cells ~clients ~depth ~policy:Device.Sstf in
            let seek c = c.c_io.Iostats.seek_us in
            let beats c =
              seek c < seek fifo && c.c_lat_p99 < fifo.c_lat_p99
            in
            Some (clients, depth, beats elev, beats sstf)
          end)
        depths)
    client_counts

(* Degeneracy: at depth 1 every policy row equals the others and the
   queue-off baseline, measure for measure. *)
let depth1_checks cells baselines =
  List.map
    (fun clients ->
      let base =
        J.to_string
          (measures_json (List.find (fun c -> c.c_clients = clients) baselines))
      in
      let same =
        List.for_all
          (fun policy ->
            J.to_string (measures_json (find cells ~clients ~depth:1 ~policy))
            = base)
          policies
      in
      (clients, same))
    client_counts

let default_out = "BENCH_QDEPTH.json"

let run ?out () =
  let out = match out with Some p -> p | None -> default_out in
  Setup.hr
    "disk scheduler sweep: clients x queue depth x policy (churn workload)";
  let cells =
    List.concat_map
      (fun clients ->
        List.concat_map
          (fun depth ->
            List.map
              (fun policy -> run_cell ~clients ~policy ~depth)
              policies)
          depths)
      client_counts
  in
  let baselines =
    List.map
      (fun clients -> run_cell ~clients ~policy:Device.Fifo ~depth:0)
      client_counts
  in
  Printf.printf "  %7s %6s %9s %10s %8s %12s %12s\n" "clients" "depth" "policy"
    "seek ms" "ios" "p50 ms" "p99 ms";
  List.iter
    (fun c ->
      Printf.printf "  %7d %6d %9s %10.1f %8d %12.1f %12.1f\n" c.c_clients
        c.c_depth
        (if c.c_depth = 0 then "none" else Device.policy_to_string c.c_policy)
        (float_of_int c.c_io.Iostats.seek_us /. 1000.)
        c.c_io.Iostats.ios
        (c.c_lat_p50 /. 1000.)
        (c.c_lat_p99 /. 1000.))
    (baselines @ cells);
  let shapes = shape_checks cells in
  let d1 = depth1_checks cells baselines in
  let shape_ok =
    List.for_all (fun (_, _, elev, sstf) -> elev || sstf) shapes
  in
  let depth1_ok = List.for_all snd d1 in
  List.iter
    (fun (clients, depth, elev, sstf) ->
      if not (elev || sstf) then
        Printf.printf
          "  WARNING: no policy beats fifo at clients=%d depth=%d (elevator=%b sstf=%b)\n"
          clients depth elev sstf)
    shapes;
  List.iter
    (fun (clients, same) ->
      if not same then
        Printf.printf
          "  WARNING: depth-1 rows differ from the queue-off baseline at clients=%d\n"
          clients)
    d1;
  Printf.printf "  shape checks %s, depth-1 degeneracy %s\n"
    (if shape_ok then "ok" else "FAILED")
    (if depth1_ok then "ok" else "FAILED");
  let obj =
    J.Obj
      [
        ("bench", J.Str "disk-scheduler-sweep");
        ("geometry", J.Str (Format.asprintf "%a" Geometry.pp Setup.geom));
        ( "workload",
          J.Obj
            [
              ("kind", J.Str "churn-per-client");
              ("slots", J.Int spec.C.slots);
              ("churn_ops", J.Int spec.C.churn_ops);
              ("bytes_min", J.Int spec.C.bytes_min);
              ("bytes_max", J.Int spec.C.bytes_max);
              ("think_us", J.Int spec.C.churn_think_us);
              ("seed", J.Int spec.C.churn_seed);
            ] );
        ( "shape_checks",
          J.Arr
            (List.map
               (fun (clients, depth, elev, sstf) ->
                 J.Obj
                   [
                     ("clients", J.Int clients);
                     ("depth", J.Int depth);
                     ("elevator_beats_fifo", J.Bool elev);
                     ("sstf_beats_fifo", J.Bool sstf);
                   ])
               shapes) );
        ("shape_ok", J.Bool shape_ok);
        ( "depth1_identical",
          J.Arr
            (List.map
               (fun (clients, same) ->
                 J.Obj [ ("clients", J.Int clients); ("identical", J.Bool same) ])
               d1) );
        ("depth1_ok", J.Bool depth1_ok);
        ("baselines", J.Arr (List.map row_json baselines));
        ("rows", J.Arr (List.map row_json cells));
      ]
  in
  let oc = open_out out in
  output_string oc (J.to_string_pretty obj);
  output_char oc '\n';
  close_out oc;
  Printf.printf "  wrote %s\n" out
