(* Benchmark harness entry point.

   dune exec bench/main.exe            -- reproduce every paper table
   dune exec bench/main.exe -- table2  -- one table (table1..table5,
                                          recovery-model, group-commit,
                                          log-records, vam, model, log-util)
   dune exec bench/main.exe -- --micro -- Bechamel microbenchmarks too *)

let usage () =
  prerr_endline
    "usage: main.exe [table1|table2|table3|table4|table5|recovery-model|group-commit|log-records|vam|model|log-util|vam-logging|log-size|fragmentation|obs-json|clients|faultsweep|recovery|wrap|timeline|breakdown|volumes|qdepth|diff|all] [--micro] [--out PATH]";
  exit 2

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let micro = List.mem "--micro" args in
  (* --out PATH redirects obs-json's output file. *)
  let rec split_out acc = function
    | "--out" :: path :: rest -> (Some path, List.rev_append acc rest)
    | "--out" :: [] -> usage ()
    | a :: rest -> split_out (a :: acc) rest
    | [] -> (None, List.rev acc)
  in
  let out, args = split_out [] args in
  let targets = List.filter (fun a -> a <> "--micro") args in
  print_endline
    "Reimplementing the Cedar File System Using Logging and Group Commit";
  print_endline "(Hagmann, SOSP 1987) -- reproduction harness";
  Printf.printf "simulated disk: %s\n"
    (Format.asprintf "%a" Cedar_disk.Geometry.pp Setup.geom);
  let run = function
    | "table1" -> Bench_tables.table1 ()
    | "table2" -> Bench_tables.table2 ()
    | "table3" -> Bench_tables.table3 ()
    | "table4" -> Bench_tables.table4 ()
    | "table5" -> Bench_tables.table5 ()
    | "recovery-model" -> Bench_tables.recovery ()
    | "group-commit" -> Bench_tables.group_commit ()
    | "log-records" -> Bench_tables.log_records ()
    | "vam" -> Bench_tables.vam_rebuild ()
    | "model" -> Bench_tables.model_validation ()
    | "log-util" -> Bench_tables.log_utilization ()
    | "vam-logging" -> Bench_tables.vam_logging ()
    | "log-size" -> Bench_tables.log_size ()
    | "fragmentation" -> Bench_tables.fragmentation ()
    | "obs-json" -> Obs_json.run ?out ()
    | "clients" -> Bench_clients.run ?out ()
    | "faultsweep" -> Bench_faultsweep.run ?out ()
    | "recovery" -> Bench_recovery.run ?out ()
    | "wrap" -> Bench_wrap.run ?out ()
    | "timeline" -> Bench_timeline.run ?out ()
    | "breakdown" -> Bench_breakdown.run ?out ()
    | "volumes" -> Bench_volumes.run ?out ()
    | "qdepth" -> Bench_qdepth.run ?out ()
    | "diff" -> Bench_diff.run ?out ()
    | "all" -> Bench_tables.all ()
    | _ -> usage ()
  in
  (match targets with [] -> Bench_tables.all () | ts -> List.iter run ts);
  if micro then begin
    Setup.hr "Bechamel microbenchmarks (host time per operation)";
    Micro.run ()
  end
