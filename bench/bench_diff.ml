(* Snapshot drift detection (bench diff / make bench-diff).

   Regenerates every committed BENCH_*.json into a scratch directory and
   structurally compares each against the snapshot in the repo root.
   The simulation is deterministic, so most fields must match exactly;
   timing-flavoured fields (latencies, rates, percentiles, busy/fill
   fractions) get a 10% relative tolerance so that a legitimately
   re-timed run — a device-model tweak, a scheduling change — reads as
   "within tolerance" while a behavioural change (counts, violations,
   structure) still trips the diff.

   Exits non-zero on any drift, which is what wires it into make ci:
   either the code change is benign and the snapshots are regenerated
   and committed alongside it, or the drift is a regression and the
   build says so. *)

module J = Cedar_obs.Jsonb

let snapshots : (string * (string -> unit)) list =
  [
    ("BENCH_OBS.json", fun out -> Obs_json.run ~out ());
    ("BENCH_GROUPCOMMIT.json", fun out -> Bench_clients.run ~out ());
    ("BENCH_FAULTSWEEP.json", fun out -> Bench_faultsweep.run ~out ());
    ("BENCH_RECOVERY.json", fun out -> Bench_recovery.run ~out ());
    ("BENCH_WRAP.json", fun out -> Bench_wrap.run ~out ());
    ("BENCH_TIMELINE.json", fun out -> Bench_timeline.run ~out ());
    ("BENCH_BREAKDOWN.json", fun out -> Bench_breakdown.run ~out ());
    ("BENCH_VOLUMES.json", fun out -> Bench_volumes.run ~out ());
    ("BENCH_QDEPTH.json", fun out -> Bench_qdepth.run ~out ());
  ]

let scratch_dir = "_build/bench-diff"

(* Field names that measure time, rates or occupancy — the ones whose
   exact value is a property of the device model rather than of
   behavioural correctness. Matched against the innermost object key. *)
let tolerant_field name =
  let suffix s =
    let ln = String.length name and ls = String.length s in
    ln >= ls && String.sub name (ln - ls) ls = s
  in
  let contains s =
    let ln = String.length name and ls = String.length s in
    let rec go i = i + ls <= ln && (String.sub name i ls = s || go (i + 1)) in
    go 0
  in
  suffix "_us" || suffix "_ms" || suffix "_s"
  || contains "rate" || contains "mean" || contains "p50" || contains "p90"
  || contains "p95" || contains "p99" || contains "busy" || contains "fill"
  || contains "wait" || contains "duration" || contains "ops_per"
  || contains "achieved" || contains "util" || contains "age"

let rel_tolerance = 0.10

let close a b =
  a = b
  || abs_float (a -. b) <= rel_tolerance *. Stdlib.max (abs_float a) (abs_float b)

(* Walk both trees in step, collecting one line per mismatch. [key] is
   the innermost object field we are under (tolerance is per-field). *)
let rec diff ~path ~key want got acc =
  match (want, got) with
  | J.Obj w, J.Obj g ->
    let acc =
      List.fold_left
        (fun acc (k, wv) ->
          match List.assoc_opt k g with
          | Some gv -> diff ~path:(path ^ "." ^ k) ~key:k wv gv acc
          | None -> Printf.sprintf "%s.%s: missing" path k :: acc)
        acc w
    in
    List.fold_left
      (fun acc (k, _) ->
        if List.mem_assoc k w then acc
        else Printf.sprintf "%s.%s: unexpected" path k :: acc)
      acc g
  | J.Arr w, J.Arr g ->
    if List.length w <> List.length g then
      Printf.sprintf "%s: %d element(s), want %d" path (List.length g)
        (List.length w)
      :: acc
    else
      List.fold_left2
        (fun (i, acc) wv gv ->
          ( i + 1,
            diff ~path:(Printf.sprintf "%s[%d]" path i) ~key wv gv acc ))
        (0, acc) w g
      |> snd
  | J.Int w, J.Int g when w = g -> acc
  | J.Float w, J.Float g when w = g -> acc
  | (J.Int _ | J.Float _), (J.Int _ | J.Float _) when tolerant_field key ->
    let f = function J.Int n -> float_of_int n | J.Float x -> x | _ -> 0.0 in
    if close (f want) (f got) then acc
    else
      Printf.sprintf "%s: %s, want %s (beyond %.0f%%)" path (J.to_string got)
        (J.to_string want)
        (rel_tolerance *. 100.0)
      :: acc
  | _ ->
    if want = got then acc
    else Printf.sprintf "%s: %s, want %s" path (J.to_string got) (J.to_string want) :: acc

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let parse label path =
  match J.of_string (read_file path) with
  | Ok v -> v
  | Error m -> failwith (Printf.sprintf "%s: %s" label m)

let mkdir_p path =
  (* only two levels deep; good enough for the scratch dir *)
  let parent = Filename.dirname path in
  (try Sys.mkdir parent 0o755 with Sys_error _ -> ());
  try Sys.mkdir path 0o755 with Sys_error _ -> ()

let diff_one name regen =
  if not (Sys.file_exists name) then [ name ^ ": no committed snapshot" ]
  else begin
    let fresh = Filename.concat scratch_dir name in
    regen fresh;
    let want = parse name name and got = parse fresh fresh in
    List.rev (diff ~path:name ~key:"" want got [])
  end

let run ?out () =
  Setup.hr "snapshot drift check (regenerate every BENCH_*.json and compare)";
  mkdir_p scratch_dir;
  let results = List.map (fun (name, regen) -> (name, diff_one name regen)) snapshots in
  Setup.hr "bench-diff verdict";
  let total =
    List.fold_left (fun n (name, drift) ->
        (match drift with
        | [] -> Printf.printf "  %-24s ok\n" name
        | ds ->
          Printf.printf "  %-24s %d field(s) drifted\n" name (List.length ds);
          List.iteri (fun i d -> if i < 12 then Printf.printf "    %s\n" d) ds;
          if List.length ds > 12 then
            Printf.printf "    ... and %d more\n" (List.length ds - 12));
        n + List.length drift)
      0 results
  in
  (match out with
  | None -> ()
  | Some path ->
    let obj =
      J.Obj
        [
          ("bench", J.Str "diff");
          ("drifted_fields", J.Int total);
          ( "snapshots",
            J.Obj
              (List.map
                 (fun (name, ds) ->
                   (name, J.Arr (List.map (fun d -> J.Str d) ds)))
                 results) );
        ]
    in
    let oc = open_out path in
    output_string oc (J.to_string_pretty obj);
    output_char oc '\n';
    close_out oc);
  if total > 0 then begin
    Printf.printf
      "  DRIFT: %d field(s); regenerate with 'make bench' and commit, or fix \
       the regression\n"
      total;
    exit 1
  end
  else print_endline "  all snapshots within tolerance"
