(* BENCH_OBS.json: Tables 2, 3/4 and 5 analogues replayed from the event
   trace rather than from bespoke counters — the trace-driven twin of
   bench_tables.ml, emitting machine-readable JSON. *)

open Cedar_disk
open Cedar_fsbase
module Obs = Cedar_obs
module Script = Cedar_workload.Obs_script

let run ?(out = "BENCH_OBS.json") () =
  (* Tables 3/4 + 2: the fixed scripted workload, then the paper's bulk
     pattern (100 x 512 B), both traced on a fresh FSD volume. *)
  let device, fs = Setup.fsd_volume () in
  let ops = Cedar_fsd.Fsd.ops fs in
  Script.warmup ops;
  let tr = Device.trace device in
  Obs.Trace.enable ~capacity:(1 lsl 18) tr;
  Script.scripted ops;
  Script.paper_bulk ops;
  Obs.Trace.disable tr;
  let entries = Obs.Trace.to_list tr in
  let per_op = Obs.Tables.per_op entries in
  let log = Obs.Tables.log_activity entries in
  let profile =
    Obs.Profile.of_entries
      ?fnt_dirty_age_us:
        (Obs.Metrics.read_dist (Device.metrics device) "fnt.dirty_page_age_us")
      entries
  in
  let sector_bytes = (Device.geometry device).Geometry.sector_bytes in
  (* Table 5: leave uncommitted work pending, crash (no shutdown), and
     boot with tracing on so the recovery phases land in the trace. *)
  for i = 0 to 49 do
    ignore
      (ops.Fs_ops.create
         ~name:(Printf.sprintf "pending/f%03d" i)
         ~data:(Bytes.make 700 'r')
        : Fs_ops.info)
  done;
  Obs.Trace.clear tr;
  Obs.Trace.enable tr;
  let fs2, report = Cedar_fsd.Fsd.boot device in
  Obs.Trace.disable tr;
  let phases = Obs.Tables.recovery_phases (Obs.Trace.to_list tr) in
  let json =
    Obs.Jsonb.Obj
      [
        ("bench", Obs.Jsonb.Str "obs-json");
        ( "workload",
          Obs.Jsonb.Obj
            [
              ("scripted_files", Obs.Jsonb.Int Script.n);
              ("scripted_bytes_each", Obs.Jsonb.Int Script.bytes_each);
              ("bulk_files", Obs.Jsonb.Int 100);
              ("bulk_bytes_each", Obs.Jsonb.Int 512);
            ] );
        ("per_op", Obs.Tables.per_op_json per_op);
        ("log", Obs.Tables.log_json ~sector_bytes log);
        ("profile", Obs.Profile.to_json profile);
        ( "recovery",
          Obs.Jsonb.Obj
            [
              ("phases", Obs.Tables.recovery_json phases);
              ( "replayed_records",
                Obs.Jsonb.Int report.Cedar_fsd.Fsd.replayed_records );
              ( "replayed_pages",
                Obs.Jsonb.Int report.Cedar_fsd.Fsd.replayed_pages );
              ("total_us", Obs.Jsonb.Int report.Cedar_fsd.Fsd.total_us);
            ] );
        ("metrics", Obs.Metrics.to_json (Device.metrics device));
        ("iostats", Iostats.to_json (Device.stats device));
        ("fsd_counters", Cedar_fsd.Fsd.counters_json fs2);
      ]
  in
  let oc = open_out out in
  output_string oc (Obs.Jsonb.to_string_pretty json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s (%d per-op rows, %d recovery phases, %d log records)\n"
    out (List.length per_op) (List.length phases) log.Obs.Tables.records
