(* Group-commit scaling sweep: N concurrent make/do clients against one
   FSD volume under the cooperative scheduler (§5.4 generalised). The
   interesting column is acked mutations per log force — group commit's
   whole point is that one synchronous force covers many clients'
   transactions, so it should grow with N until the disk saturates.

   Everything is simulated and seeded, so the emitted JSON
   (BENCH_GROUPCOMMIT.json, committed at the repo root) is byte-stable:
   reviewers diff it like a snapshot test. *)

module S = Cedar_server.Server
module C = Cedar_workload.Concurrent
module J = Cedar_obs.Jsonb

let client_counts = [ 1; 2; 4; 8; 16; 32 ]

let spec = { C.default_spec with C.modules = 8; rounds = 2; think_us = 50_000 }

type row = { n : int; r : S.report }

let run_one n =
  let _device, fs = Setup.fsd_volume () in
  let scripts = C.makedo_scripts spec ~clients:n in
  let r = S.serve fs scripts in
  { n; r }

let throughput_ops_s row =
  if row.r.S.duration_us = 0 then 0.
  else
    float_of_int row.r.S.total_ops
    /. Cedar_util.Simclock.s_of_us row.r.S.duration_us

let row_json row =
  let r = row.r in
  J.Obj
    [
      ("clients", J.Int row.n);
      ("duration_us", J.Int r.S.duration_us);
      ("total_ops", J.Int r.S.total_ops);
      ("mutations_acked", J.Int r.S.mutations_acked);
      ("log_forces", J.Int r.S.log_forces);
      ("server_forces", J.Int r.S.server_forces);
      ("ops_per_force", J.Float r.S.ops_per_force);
      ("throughput_ops_s", J.Float (throughput_ops_s row));
      ("commit_wait_mean_us", J.Float r.S.wait_mean_us);
      ("commit_wait_p50_us", J.Float r.S.wait_p50_us);
      ("commit_wait_p99_us", J.Float r.S.wait_p99_us);
      ("commit_wait_max_us", J.Float r.S.wait_max_us);
      ("batch_mean", J.Float r.S.batch_mean);
      ("batch_max", J.Float r.S.batch_max);
      ("rejected", J.Int r.S.total_rejected);
      ("errors", J.Int r.S.total_errors);
    ]

let default_out = "BENCH_GROUPCOMMIT.json"

let run ?out () =
  let out = match out with Some p -> p | None -> default_out in
  Setup.hr "group-commit scaling: N concurrent make/do clients (cedar serve)";
  Printf.printf
    "  %7s %9s %9s %8s %11s %12s %12s %10s\n"
    "clients" "ops" "forces" "ops/force" "ops/s(sim)" "wait p50 ms" "wait p99 ms"
    "batch avg";
  let rows = List.map run_one client_counts in
  List.iter
    (fun row ->
      let r = row.r in
      Printf.printf "  %7d %9d %9d %8.1f %11.1f %12.1f %12.1f %10.1f\n" row.n
        r.S.total_ops r.S.log_forces r.S.ops_per_force (throughput_ops_s row)
        (r.S.wait_p50_us /. 1000.)
        (r.S.wait_p99_us /. 1000.)
        r.S.batch_mean)
    rows;
  (* The paper's claim, as a regression check the harness itself enforces:
     amortisation strictly improves with client count. *)
  let rec monotone = function
    | a :: (b : row) :: rest ->
      if b.r.S.ops_per_force <= a.r.S.ops_per_force then begin
        Printf.printf
          "  WARNING: ops/force not monotone (%d clients: %.2f, %d clients: %.2f)\n"
          a.n a.r.S.ops_per_force b.n b.r.S.ops_per_force;
        false
      end
      else monotone (b :: rest)
    | _ -> true
  in
  let mono = monotone rows in
  let obj =
    J.Obj
      [
        ("bench", J.Str "group-commit-scaling");
        ("geometry", J.Str (Format.asprintf "%a" Cedar_disk.Geometry.pp Setup.geom));
        ( "workload",
          J.Obj
            [
              ("kind", J.Str "makedo-per-client");
              ("modules", J.Int spec.C.modules);
              ("deps_per_module", J.Int spec.C.deps_per_module);
              ("rounds", J.Int spec.C.rounds);
              ("source_bytes", J.Int spec.C.source_bytes);
              ("think_us", J.Int spec.C.think_us);
              ("seed", J.Int spec.C.seed);
            ] );
        ("ops_per_force_monotone", J.Bool mono);
        ("rows", J.Arr (List.map row_json rows));
      ]
  in
  let oc = open_out out in
  output_string oc (J.to_string_pretty obj);
  output_char oc '\n';
  close_out oc;
  Printf.printf "  wrote %s\n" out
