(* Crash-injection sweep over the server path (cedar faultsweep): every
   sector write of every group-commit force interval of the 2-client
   reference workload, once per tear mode, plus a scavenge-mode pass
   with both name-table copies destroyed after each crash. The columns
   that matter are the recovery-path histogram (log replay should carry
   almost everything, twin repair the damaged-sector points, the
   scavenger only the forced pass) and the violation count, which the
   harness requires to be zero.

   Deterministic and seeded like every other bench: the emitted JSON
   (BENCH_FAULTSWEEP.json, committed at the repo root) is byte-stable. *)

module F = Cedar_server.Faultsweep
module J = Cedar_obs.Jsonb

type row = { label : string; cfg : F.cfg; s : F.summary }

let rows () =
  let tear_rows =
    List.map
      (fun tear ->
        let cfg =
          {
            F.clients = 2;
            tears = [ tear ];
            max_forces = None;
            scavenge = false;
            workload = F.Reference;
          }
        in
        { label = F.tear_name tear; cfg; s = F.sweep cfg })
      F.all_tears
  in
  let scav_cfg =
    {
      F.clients = 2;
      tears = [ Cedar_disk.Device.Tear_none ];
      max_forces = None;
      scavenge = true;
      workload = F.Reference;
    }
  in
  tear_rows @ [ { label = "scavenge"; cfg = scav_cfg; s = F.sweep scav_cfg } ]

let row_json row =
  let s = row.s in
  J.Obj
    [
      ("mode", J.Str row.label);
      ("clients", J.Int s.F.sw_clients);
      ("scavenge", J.Bool s.F.sw_scavenge);
      ( "writes_per_interval",
        J.Arr
          (Array.to_list (Array.map (fun n -> J.Int n) s.F.sw_writes_per_interval))
      );
      ("points", J.Int s.F.sw_points);
      ("runs", J.Int s.F.sw_runs);
      ("recovered_by_replay", J.Int s.F.sw_replay);
      ("recovered_by_twin_repair", J.Int s.F.sw_twin_repair);
      ("recovered_by_scavenge", J.Int s.F.sw_scavenged);
      ("violations", J.Int (List.length s.F.sw_violations));
    ]

let default_out = "BENCH_FAULTSWEEP.json"

let run ?out () =
  let out = match out with Some p -> p | None -> default_out in
  Setup.hr
    "crash-injection sweep: every sector write of every force interval \
     (cedar faultsweep)";
  let rows = rows () in
  Printf.printf "  %-9s %7s %6s %7s %12s %9s %10s\n" "mode" "points" "runs"
    "replay" "twin-repair" "scavenge" "violations";
  List.iter
    (fun row ->
      let s = row.s in
      Printf.printf "  %-9s %7d %6d %7d %12d %9d %10d\n" row.label s.F.sw_points
        s.F.sw_runs s.F.sw_replay s.F.sw_twin_repair s.F.sw_scavenged
        (List.length s.F.sw_violations))
    rows;
  let total_violations =
    List.fold_left (fun n r -> n + List.length r.s.F.sw_violations) 0 rows
  in
  if total_violations > 0 then
    Printf.printf "  WARNING: %d recovery-contract violations\n" total_violations;
  let obj =
    J.Obj
      [
        ("bench", J.Str "faultsweep");
        ("workload", J.Str "crash_reference, 2 clients");
        ("violations_total", J.Int total_violations);
        ("rows", J.Arr (List.map row_json rows));
      ]
  in
  let oc = open_out out in
  output_string oc (J.to_string_pretty obj);
  output_char oc '\n';
  close_out oc;
  Printf.printf "  wrote %s\n" out
